//! The service protocol: newline-delimited JSON requests parsed into
//! typed [`Request`] values, dispatched over an [`Engine`], and
//! answered as typed [`Response`] values.
//!
//! One request per line, one response per line. Every request is a JSON
//! object with a `cmd` field and an optional `id` (echoed back
//! verbatim, so clients can pipeline). Nets and trees travel as
//! structured JSON — the service layer deliberately does not depend on
//! the CLI's `.net`/`.tree` text formats:
//!
//! ```text
//! NET  = {"driver":140,"receiver":60,"segments":[[len_um,r,c],...],"zones":[[s,e],...]}
//! TREE = {"driver":120,"nodes":[[parent,r,c,len_um,sink_w|null,blocked],...]}
//! ```
//!
//! (`driver`/`receiver`/`zones` are optional; `nodes` excludes the
//! implicit root 0 and appends nodes 1, 2, ... in order, parents before
//! children.) A tree node's `blocked` flag is **binding**: the hybrid
//! tree pipeline never places a buffer on a blocked node, and
//! `target_mult` resolves against the *masked* tree `τ_min`. Wherever a
//! tree appears — `solve_tree`, or a `batch`/`compare` tree entry — an
//! optional `allowed` field (an array of booleans with one entry per
//! node *including* the root; the root entry is ignored) overrides the
//! per-node `blocked` flags for that request, so clients can sweep
//! masks without re-encoding the tree; the two spellings of one mask
//! answer byte-identically. Exactly one of `target_fs`, `target_ns` or
//! `target_mult` selects the timing target; `target_mult` multiplies
//! the net's cached `τ_min`.
//!
//! `id` may be any JSON value and is echoed back. Note that JSON
//! numbers travel as `f64`, so integral numeric ids beyond 2^53 lose
//! precision on the echo — clients needing wider ids should send them
//! as strings.
//!
//! | `cmd`        | request fields                  | response fields                   |
//! |--------------|---------------------------------|-----------------------------------|
//! | `solve`      | `net`, target                   | `target_fs`, `delay_fs`, `total_width`, `repeaters: [[x_um, w_u], ...]` |
//! | `solve_tree` | `tree`, target, opt. `allowed`  | `target_fs`, `delay_fs`, `total_width`, `buffers: [[node, w_u], ...]` |
//! | `batch`      | `nets` and/or `trees`, target   | `results: [per-net result or error, ...]`, `tree_results: [...]` |
//! | `compare`    | `nets`/`trees`, target, `granularity` | `rows`/`tree_rows: [[base_w\|null, rip_w], ...]`, savings summary |
//! | `tau_min`    | `net`                           | `tau_min_fs`                      |
//! | `hello`      | —                               | server capabilities (shards, workers, caps, version, commands) |
//! | `stats`      | —                               | engine + server counters          |
//! | `reset_stats`| —                               | the pre-reset counters, `reset: true`; counters rezero |
//! | `drain`      | opt. `deadline_ms`              | `draining: true`, `deadline_ms`; the server stops taking work, answers what is in flight, then stops |
//! | `shutdown`   | —                               | `stopping: true`, then the server drains |
//!
//! A `batch`/`compare` tree entry is either a bare `TREE` object or
//! `{"tree": TREE, "allowed": [...]}` with the per-request mask
//! override.
//!
//! Every response carries `ok` and `proto` (the protocol version,
//! [`PROTO_VERSION`]); failures carry a machine-readable `code`
//! ([`ErrorCode`]) next to the human-readable `error`. Responses are
//! rendered deterministically — same request, same engine
//! configuration, same bytes — which is what the loadgen's
//! byte-identity check and the sharded-vs-single-engine equivalence
//! tests rely on ([`crate::loadgen`]).

use crate::json::{parse_json, Json};
use rip_core::{
    summarize_savings, BaselineConfig, BatchTarget, DpError, Engine, SavingsSummary, TreeRipConfig,
};
use rip_delay::RcTree;
use rip_net::{NetBuilder, Segment, TreeNet, TreeNetNode, TwoPinNet};
use rip_tech::units::fs_from_ns;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the wire protocol, carried as `proto` in every response.
/// Bumped when a response shape changes incompatibly.
pub const PROTO_VERSION: u64 = 1;

/// Every command the protocol knows, sorted — rendered into `hello`
/// responses and unknown-command errors.
pub const COMMANDS: &[&str] = &[
    "batch",
    "compare",
    "drain",
    "hello",
    "metrics",
    "reset_stats",
    "shutdown",
    "solve",
    "solve_tree",
    "stats",
    "tau_min",
];

/// Machine-readable failure category of an error response (`code`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse or validate.
    BadRequest,
    /// The `cmd` is not one of [`COMMANDS`].
    UnknownCmd,
    /// The request was valid but the solver failed (e.g. infeasible
    /// target).
    SolveFailed,
    /// The server is at its connection limit (`--max-conns`); retry
    /// later or against another replica.
    Busy,
    /// The target shard's request queue is full (`--queue-cap`); the
    /// client should back off and retry.
    Backpressure,
    /// The connection sat idle past the server's read timeout.
    Timeout,
    /// The handler panicked; the worker was respawned with a fresh
    /// engine and the request may be retried.
    Internal,
    /// The server is draining (a `drain` request or shutdown is in
    /// progress); no new work is accepted.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCmd => "unknown_cmd",
            ErrorCode::SolveFailed => "solve_failed",
            ErrorCode::Busy => "busy",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Parses a wire spelling back into the typed code (inverse of
    /// [`ErrorCode::as_str`]) — how the client's retry policy reads a
    /// server rejection.
    pub fn from_wire(code: &str) -> Option<Self> {
        match code {
            "bad_request" => Some(ErrorCode::BadRequest),
            "unknown_cmd" => Some(ErrorCode::UnknownCmd),
            "solve_failed" => Some(ErrorCode::SolveFailed),
            "busy" => Some(ErrorCode::Busy),
            "backpressure" => Some(ErrorCode::Backpressure),
            "timeout" => Some(ErrorCode::Timeout),
            "internal" => Some(ErrorCode::Internal),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }

    /// `true` when a client may retry the identical request and expect
    /// it to succeed: transient capacity (`busy`, `backpressure`),
    /// pacing (`timeout`) and supervised crashes (`internal`). Request
    /// defects (`bad_request`, `unknown_cmd`, `solve_failed`) and a
    /// draining server (`shutting_down`) are final.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Busy | ErrorCode::Backpressure | ErrorCode::Timeout | ErrorCode::Internal
        )
    }
}

/// Why a request line failed to parse into a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// [`ErrorCode::BadRequest`] or [`ErrorCode::UnknownCmd`].
    pub code: ErrorCode,
    /// Human-readable reason, rendered as the response's `error`.
    pub reason: String,
}

impl RequestError {
    fn bad(reason: impl Into<String>) -> Self {
        Self {
            code: ErrorCode::BadRequest,
            reason: reason.into(),
        }
    }
}

impl From<String> for RequestError {
    fn from(reason: String) -> Self {
        RequestError::bad(reason)
    }
}

impl From<&str> for RequestError {
    fn from(reason: &str) -> Self {
        RequestError::bad(reason)
    }
}

/// A request-level timing target (resolved against the engine's cached
/// `τ_min` when relative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Absolute target, fs (`target_fs`, or `target_ns` × 10⁶).
    AbsoluteFs(f64),
    /// Multiplier over the net's (masked) `τ_min` (`target_mult`).
    TauMinMultiple(f64),
}

/// One tree in a `batch`/`compare` request: the tree plus an optional
/// request-level `allowed` override of its `blocked` flags (exactly the
/// `solve_tree` override, per entry).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeEntry {
    /// The tree (its `blocked` flags are the default mask).
    pub tree: TreeNet,
    /// Validated mask override (one entry per node including the root),
    /// or `None` to use the tree's own `blocked` flags.
    pub allowed: Option<Vec<bool>>,
}

impl TreeEntry {
    /// The binding buffer-legality mask of this entry: the override
    /// when present, the tree's own `blocked` flags otherwise. The two
    /// spellings of one mask produce byte-identical responses.
    pub fn mask(&self) -> Vec<bool> {
        self.allowed
            .clone()
            .unwrap_or_else(|| self.tree.allowed_mask())
    }
}

/// A parsed, validated protocol request — what the shard router hashes
/// and dispatches; no JSON survives past this point.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `solve`: hybrid pipeline on one chain net.
    Solve {
        /// The net to solve.
        net: TwoPinNet,
        /// The timing target.
        target: Target,
    },
    /// `solve_tree`: hybrid tree pipeline on one (possibly masked) tree.
    SolveTree {
        /// The tree to solve (`blocked` flags are binding).
        tree: TreeNet,
        /// The timing target (`target_mult` resolves against the masked
        /// `τ_min`).
        target: Target,
        /// Validated request-level mask override, or `None` for the
        /// tree's own `blocked` flags.
        allowed: Option<Vec<bool>>,
    },
    /// `batch`: many nets and/or trees, one target rule, per-item
    /// results.
    Batch {
        /// Chain nets (possibly empty when `trees` is not).
        nets: Vec<TwoPinNet>,
        /// Tree entries (possibly empty when `nets` is not).
        trees: Vec<TreeEntry>,
        /// The shared target rule.
        target: Target,
    },
    /// `compare`: RIP vs the fixed-library baseline DP over a batch.
    Compare {
        /// Chain nets (possibly empty when `trees` is not).
        nets: Vec<TwoPinNet>,
        /// Tree entries (possibly empty when `nets` is not).
        trees: Vec<TreeEntry>,
        /// The shared target rule.
        target: Target,
        /// Baseline library granularity, u (paper Table 1).
        granularity: f64,
    },
    /// `tau_min`: minimum achievable delay of one net.
    TauMin {
        /// The net.
        net: TwoPinNet,
    },
    /// `hello`: server capabilities.
    Hello,
    /// `stats`: engine + server counters.
    Stats,
    /// `metrics`: the full metrics registry (stage-latency and
    /// request-latency histograms) as JSON.
    Metrics,
    /// `reset_stats`: render the counters, then rezero them.
    ResetStats,
    /// `drain`: stop accepting work, answer what is in flight, then
    /// stop — bounded by a deadline.
    Drain {
        /// Drain deadline override, ms (`deadline_ms`); `None` uses the
        /// server's configured `--drain-secs`.
        deadline_ms: Option<u64>,
    },
    /// `shutdown`: acknowledge, then drain the server.
    Shutdown,
}

impl Request {
    /// The wire `cmd` of this request.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Solve { .. } => "solve",
            Request::SolveTree { .. } => "solve_tree",
            Request::Batch { .. } => "batch",
            Request::Compare { .. } => "compare",
            Request::TauMin { .. } => "tau_min",
            Request::Hello => "hello",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::ResetStats => "reset_stats",
            Request::Drain { .. } => "drain",
            Request::Shutdown => "shutdown",
        }
    }

    /// `true` for control-plane requests: `hello`, `stats`, `metrics`,
    /// `reset_stats`, `drain` and `shutdown`. The edge answers these
    /// itself (even while draining) and the fault injector never
    /// targets them — operators must be able to observe and stop a
    /// degraded server.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Hello
                | Request::Stats
                | Request::Metrics
                | Request::ResetStats
                | Request::Drain { .. }
                | Request::Shutdown
        )
    }

    /// Parses a request object (one decoded line) into a typed request.
    ///
    /// # Errors
    ///
    /// Returns a [`RequestError`] naming the offending field; unknown
    /// commands get [`ErrorCode::UnknownCmd`] with the received command
    /// and the list of known ones.
    pub fn from_json(request: &Json) -> Result<Request, RequestError> {
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request needs a string 'cmd'")?;
        match cmd {
            "solve" => Ok(Request::Solve {
                net: net_from_json(request.get("net").ok_or("solve needs a 'net'")?)?,
                target: parse_target(request)?,
            }),
            "tau_min" => Ok(Request::TauMin {
                net: net_from_json(request.get("net").ok_or("tau_min needs a 'net'")?)?,
            }),
            "solve_tree" => {
                let tree = tree_from_json(request.get("tree").ok_or("solve_tree needs a 'tree'")?)?;
                let allowed = match request.get("allowed") {
                    None => None,
                    Some(value) => Some(allowed_from_json(value, &tree)?),
                };
                Ok(Request::SolveTree {
                    tree,
                    target: parse_target(request)?,
                    allowed,
                })
            }
            "batch" => {
                let (nets, trees) = nets_and_trees(request, "batch")?;
                Ok(Request::Batch {
                    nets,
                    trees,
                    target: parse_target(request)?,
                })
            }
            "compare" => {
                let (nets, trees) = nets_and_trees(request, "compare")?;
                let granularity = request
                    .get("granularity")
                    .and_then(Json::as_f64)
                    .unwrap_or(20.0);
                if !(granularity.is_finite() && granularity > 0.0) {
                    return Err("granularity must be positive".into());
                }
                Ok(Request::Compare {
                    nets,
                    trees,
                    target: parse_target(request)?,
                    granularity,
                })
            }
            "hello" => Ok(Request::Hello),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "reset_stats" => Ok(Request::ResetStats),
            "drain" => {
                let deadline_ms = match request.get("deadline_ms") {
                    None => None,
                    Some(value) => {
                        let ms = value
                            .as_f64()
                            .filter(|ms| ms.is_finite() && *ms >= 0.0)
                            .ok_or("deadline_ms must be a non-negative number")?;
                        Some(ms as u64)
                    }
                };
                Ok(Request::Drain { deadline_ms })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(RequestError {
                code: ErrorCode::UnknownCmd,
                reason: format!(
                    "unknown cmd {other:?}; known commands: {}",
                    COMMANDS.join(", ")
                ),
            }),
        }
    }

    /// Encodes the request back into its wire object (inverse of
    /// [`Request::from_json`] — the encode/decode round trip is
    /// property-tested). Targets encode canonically (`target_fs` /
    /// `target_mult`; a parsed `target_ns` re-encodes as `target_fs`).
    pub fn to_json(&self, id: Option<&Json>) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(id) = id {
            fields.push(("id".to_string(), id.clone()));
        }
        fields.push(("cmd".to_string(), Json::from(self.cmd())));
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match self {
            Request::Solve { net, target } => {
                push("net", net_to_json(net));
                push_target(&mut push, *target);
            }
            Request::TauMin { net } => push("net", net_to_json(net)),
            Request::SolveTree {
                tree,
                target,
                allowed,
            } => {
                push("tree", tree_to_json(tree));
                push_target(&mut push, *target);
                if let Some(mask) = allowed {
                    push(
                        "allowed",
                        Json::Arr(mask.iter().copied().map(Json::Bool).collect()),
                    );
                }
            }
            Request::Batch {
                nets,
                trees,
                target,
            } => {
                push_nets_and_trees(&mut push, nets, trees);
                push_target(&mut push, *target);
            }
            Request::Compare {
                nets,
                trees,
                target,
                granularity,
            } => {
                push_nets_and_trees(&mut push, nets, trees);
                push_target(&mut push, *target);
                push("granularity", Json::Num(*granularity));
            }
            Request::Drain { deadline_ms } => {
                if let Some(ms) = deadline_ms {
                    push("deadline_ms", Json::from(*ms));
                }
            }
            Request::Hello
            | Request::Stats
            | Request::Metrics
            | Request::ResetStats
            | Request::Shutdown => {}
        }
        Json::Obj(fields)
    }
}

fn push_target(push: &mut impl FnMut(&str, Json), target: Target) {
    match target {
        Target::AbsoluteFs(fs) => push("target_fs", Json::Num(fs)),
        Target::TauMinMultiple(m) => push("target_mult", Json::Num(m)),
    }
}

fn push_nets_and_trees(push: &mut impl FnMut(&str, Json), nets: &[TwoPinNet], trees: &[TreeEntry]) {
    if !nets.is_empty() {
        push("nets", Json::Arr(nets.iter().map(net_to_json).collect()));
    }
    if !trees.is_empty() {
        push(
            "trees",
            Json::Arr(
                trees
                    .iter()
                    .map(|entry| {
                        let mut fields = vec![("tree", tree_to_json(&entry.tree))];
                        if let Some(mask) = &entry.allowed {
                            fields.push((
                                "allowed",
                                Json::Arr(mask.iter().copied().map(Json::Bool).collect()),
                            ));
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        );
    }
}

/// Splits one raw request line into its echoed `id` and the typed
/// parse result — the front door of both the direct server and the
/// shard router ([`ServeState::handle_line`] is exactly this followed
/// by [`ServeState::handle_request`] and [`Response::render`]).
pub fn parse_line(line: &str) -> (Json, Result<Request, RequestError>) {
    let request = match parse_json(line) {
        Ok(request) => request,
        Err(e) => return (Json::Null, Err(RequestError::bad(e.to_string()))),
    };
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    (id, Request::from_json(&request))
}

/// One solved chain net, as rendered into `solve` responses and
/// `batch` result entries.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The resolved absolute target, fs.
    pub target_fs: f64,
    /// Achieved source-to-sink Elmore delay, fs.
    pub delay_fs: f64,
    /// Total repeater width, u.
    pub total_width: f64,
    /// `(position_um, width_u)` per inserted repeater.
    pub repeaters: Vec<(f64, f64)>,
}

/// One solved tree, as rendered into `solve_tree` responses and
/// `batch` tree-result entries.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSolveResult {
    /// The resolved absolute target, fs.
    pub target_fs: f64,
    /// Achieved worst source-to-sink Elmore delay, fs.
    pub delay_fs: f64,
    /// Total buffer width, u.
    pub total_width: f64,
    /// `(fine_node_index, width_u)` per inserted buffer.
    pub buffers: Vec<(usize, f64)>,
}

/// Server capabilities rendered into a `hello` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerInfo {
    /// Engine shards (0 = single shared engine, no shard layer).
    pub shards: usize,
    /// Connection worker threads.
    pub workers: usize,
    /// Concurrent-connection cap (0 = unlimited).
    pub max_conns: usize,
    /// Per-shard bounded queue depth (0 = no shard layer).
    pub queue_cap: usize,
}

/// A typed protocol response; [`Response::render`] is the only place
/// response JSON is produced, so every transport (direct worker, shard
/// fan-out, in-process reference) renders byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `solve` succeeded.
    Solve(SolveResult),
    /// `solve_tree` succeeded.
    SolveTree(TreeSolveResult),
    /// `batch` ran (individual items may still have failed).
    Batch {
        /// Per-net outcome, in request order (`Err` carries the
        /// per-item failure reason).
        results: Vec<Result<SolveResult, String>>,
        /// Per-tree outcome, in request order.
        tree_results: Vec<Result<TreeSolveResult, String>>,
    },
    /// `compare` ran.
    Compare {
        /// Per-net `(baseline width, RIP width)` rows (`None` baseline
        /// = the paper's `V_DP` timing violation).
        rows: Vec<(Option<f64>, f64)>,
        /// Per-tree rows, same convention.
        tree_rows: Vec<(Option<f64>, f64)>,
        /// Savings summary over all rows (nets then trees).
        summary: SavingsSummary,
    },
    /// `tau_min` succeeded.
    TauMin {
        /// The minimum achievable delay, fs.
        tau_min_fs: f64,
    },
    /// `hello`: capabilities plus the engine cache caps.
    Hello {
        /// Server topology and limits.
        info: ServerInfo,
        /// Geometry-cache LRU bound (0 = unbounded).
        cache_cap: usize,
        /// `τ_min`/library-cache LRU bound (0 = unbounded).
        value_cache_cap: usize,
    },
    /// `stats` / `reset_stats` counters (pre-rendered: the values are
    /// captured when the request is handled, not when rendered).
    Stats {
        /// Counter fields, in render order.
        fields: Vec<(&'static str, Json)>,
        /// `true` for `reset_stats` (the counters were rezeroed after
        /// capture).
        reset: bool,
    },
    /// `metrics`: a point-in-time copy of the metrics registry (edge
    /// request-latency histograms merged with every live engine's
    /// stage-latency histograms on a sharded server).
    Metrics {
        /// The merged registry snapshot.
        snapshot: rip_obs::RegistrySnapshot,
    },
    /// `drain` acknowledged; the server stops taking work and answers
    /// what is in flight, bounded by the echoed deadline.
    Draining {
        /// The resolved drain deadline, ms.
        deadline_ms: u64,
    },
    /// `shutdown` acknowledged; the server drains after responding.
    Shutdown,
    /// The request failed.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable reason.
        error: String,
    },
}

impl Response {
    /// An [`ErrorCode::SolveFailed`] error response.
    pub fn solve_error(reason: impl Into<String>) -> Self {
        Response::Error {
            code: ErrorCode::SolveFailed,
            error: reason.into(),
        }
    }

    /// `true` when this response reports a failure (`ok: false`).
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// Renders the response line for an echoed `id`:
    /// `{"id":…,"ok":…,"proto":…, …}`.
    pub fn render(&self, id: &Json) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("id".to_string(), id.clone()),
            ("ok".to_string(), Json::Bool(!self.is_error())),
            ("proto".to_string(), Json::from(PROTO_VERSION)),
        ];
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match self {
            Response::Solve(result) => push_solve_fields(&mut push, result),
            Response::SolveTree(result) => push_tree_fields(&mut push, result),
            Response::Batch {
                results,
                tree_results,
            } => {
                push(
                    "results",
                    Json::Arr(results.iter().map(render_batch_item).collect()),
                );
                push(
                    "tree_results",
                    Json::Arr(tree_results.iter().map(render_tree_batch_item).collect()),
                );
            }
            Response::Compare {
                rows,
                tree_rows,
                summary,
            } => {
                push("rows", render_rows(rows));
                push("tree_rows", render_rows(tree_rows));
                push("max_percent", Json::Num(summary.max_percent));
                push("mean_percent", Json::Num(summary.mean_percent));
                push(
                    "baseline_violations",
                    Json::from(summary.baseline_violations),
                );
                push("compared", Json::from(summary.compared));
            }
            Response::TauMin { tau_min_fs } => push("tau_min_fs", Json::Num(*tau_min_fs)),
            Response::Hello {
                info,
                cache_cap,
                value_cache_cap,
            } => {
                push("server", Json::from("rip-serve"));
                push("version", Json::from(env!("CARGO_PKG_VERSION")));
                push("shards", Json::from(info.shards));
                push("workers", Json::from(info.workers));
                push("max_conns", Json::from(info.max_conns));
                push("queue_cap", Json::from(info.queue_cap));
                push("cache_cap", Json::from(*cache_cap));
                push("value_cache_cap", Json::from(*value_cache_cap));
                push(
                    "commands",
                    Json::Arr(COMMANDS.iter().map(|c| Json::from(*c)).collect()),
                );
            }
            Response::Stats { fields, reset } => {
                for (k, v) in fields {
                    push(k, v.clone());
                }
                if *reset {
                    push("reset", Json::Bool(true));
                }
            }
            Response::Metrics { snapshot } => {
                push(
                    "counters",
                    Json::Obj(
                        snapshot
                            .counters
                            .iter()
                            .map(|(name, v)| (name.clone(), Json::from(*v)))
                            .collect(),
                    ),
                );
                push(
                    "gauges",
                    Json::Obj(
                        snapshot
                            .gauges
                            .iter()
                            .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                );
                push(
                    "histograms",
                    Json::Obj(
                        snapshot
                            .histograms
                            .iter()
                            .map(|(name, h)| (name.clone(), render_histogram(h)))
                            .collect(),
                    ),
                );
            }
            Response::Draining { deadline_ms } => {
                push("draining", Json::Bool(true));
                push("deadline_ms", Json::from(*deadline_ms));
            }
            Response::Shutdown => push("stopping", Json::Bool(true)),
            Response::Error { code, error } => {
                push("code", Json::from(code.as_str()));
                push("error", Json::Str(error.clone()));
            }
        }
        Json::Obj(fields)
    }
}

fn push_solve_fields(push: &mut impl FnMut(&str, Json), result: &SolveResult) {
    push("target_fs", Json::Num(result.target_fs));
    push("delay_fs", Json::Num(result.delay_fs));
    push("total_width", Json::Num(result.total_width));
    push(
        "repeaters",
        Json::Arr(
            result
                .repeaters
                .iter()
                .map(|(x, w)| Json::Arr(vec![Json::Num(*x), Json::Num(*w)]))
                .collect(),
        ),
    );
}

fn push_tree_fields(push: &mut impl FnMut(&str, Json), result: &TreeSolveResult) {
    push("target_fs", Json::Num(result.target_fs));
    push("delay_fs", Json::Num(result.delay_fs));
    push("total_width", Json::Num(result.total_width));
    push(
        "buffers",
        Json::Arr(
            result
                .buffers
                .iter()
                .map(|(v, w)| Json::Arr(vec![Json::Num(*v as f64), Json::Num(*w)]))
                .collect(),
        ),
    );
}

fn render_batch_item(item: &Result<SolveResult, String>) -> Json {
    match item {
        Ok(result) => {
            let mut fields = vec![("ok".to_string(), Json::Bool(true))];
            let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
            push_solve_fields(&mut push, result);
            Json::Obj(fields)
        }
        Err(e) => Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(e.clone()))]),
    }
}

fn render_tree_batch_item(item: &Result<TreeSolveResult, String>) -> Json {
    match item {
        Ok(result) => {
            let mut fields = vec![("ok".to_string(), Json::Bool(true))];
            let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
            push_tree_fields(&mut push, result);
            Json::Obj(fields)
        }
        Err(e) => Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(e.clone()))]),
    }
}

/// Renders one histogram snapshot as
/// `{"count":…,"sum":…,"p50":…,"p90":…,"p99":…,"buckets":[[upper,count],…]}`
/// (only non-empty buckets are listed; values are nanoseconds).
fn render_histogram(h: &rip_obs::HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::from(h.count)),
        ("sum", Json::from(h.sum)),
        ("p50", Json::from(h.quantile(0.50))),
        ("p90", Json::from(h.quantile(0.90))),
        ("p99", Json::from(h.quantile(0.99))),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(upper, count)| Json::Arr(vec![Json::from(upper), Json::from(count)]))
                    .collect(),
            ),
        ),
    ])
}

fn render_rows(rows: &[(Option<f64>, f64)]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|(base, rip)| {
                Json::Arr(vec![
                    base.map(Json::Num).unwrap_or(Json::Null),
                    Json::Num(*rip),
                ])
            })
            .collect(),
    )
}

/// Shared state of a running engine worker: the long-lived [`Engine`]
/// plus server-level counters. The direct (unsharded) server shares one
/// instance across every worker thread; a sharded server gives each
/// shard its own. [`ServeState::handle_line`] is the whole request
/// router, so tests and the load generator can drive it without a
/// socket.
#[derive(Debug)]
pub struct ServeState {
    engine: Engine,
    tree_config: TreeRipConfig,
    info: Mutex<ServerInfo>,
    requests: AtomicU64,
    connections: AtomicU64,
    stop: AtomicBool,
}

impl ServeState {
    /// Wraps an engine session for serving.
    pub fn new(engine: Engine) -> Self {
        Self {
            engine,
            tree_config: TreeRipConfig::paper(),
            info: Mutex::new(ServerInfo::default()),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The shared engine session.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Sets the topology this state reports in `hello` responses
    /// (called by the server at startup; in-process states report the
    /// all-zero default).
    pub fn set_server_info(&self, info: ServerInfo) {
        *self
            .info
            .lock()
            .expect("server info lock is never poisoned") = info;
    }

    /// The topology this state reports in `hello` responses — what a
    /// supervised respawn copies onto the replacement state.
    pub fn server_info(&self) -> ServerInfo {
        *self
            .info
            .lock()
            .expect("server info lock is never poisoned")
    }

    /// Overwrites the request/connection counters — how a respawned
    /// state carries the monitoring history of the engine it replaces
    /// (engine cache stats restart cold with the fresh engine).
    pub fn restore_counters(&self, requests: u64, connections: u64) {
        self.requests.store(requests, Ordering::Relaxed);
        self.connections.store(connections, Ordering::Relaxed);
    }

    /// Requests handled so far (all commands, including malformed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Counts one handled request. [`ServeState::handle_line`] calls
    /// this itself; a caller dispatching typed requests directly
    /// ([`ServeState::handle_request`]) counts separately, so parse
    /// failures that never become typed requests still show up.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Counts one accepted connection (called by the server loop).
    pub fn count_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Asks every worker to drain and stop.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// `true` once a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Handles one request line: parses ([`parse_line`]), dispatches
    /// ([`ServeState::handle_request`]), and renders
    /// ([`Response::render`]). The second return is `true` when the
    /// request asks the server to shut down (the caller responds first,
    /// then stops).
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        self.count_request();
        let (id, parsed) = parse_line(line);
        match parsed {
            Ok(request) => {
                let response = self.handle_request(&request);
                (response.render(&id), matches!(request, Request::Shutdown))
            }
            Err(e) => (
                Response::Error {
                    code: e.code,
                    error: e.reason,
                }
                .render(&id),
                false,
            ),
        }
    }

    /// Dispatches one typed request — a pure match, no JSON. This is
    /// what a shard worker runs on routed requests; the caller is
    /// responsible for [`ServeState::count_request`].
    pub fn handle_request(&self, request: &Request) -> Response {
        match request {
            Request::Solve { net, target } => match self.run_solve(net, *target) {
                Ok(result) => Response::Solve(result),
                Err(e) => Response::solve_error(e),
            },
            Request::SolveTree {
                tree,
                target,
                allowed,
            } => match self.run_solve_tree(tree, *target, allowed.as_deref()) {
                Ok(result) => Response::SolveTree(result),
                Err(e) => Response::solve_error(e),
            },
            Request::Batch {
                nets,
                trees,
                target,
            } => Response::Batch {
                results: self.run_net_batch(nets, *target),
                tree_results: self.run_tree_batch(trees, *target),
            },
            Request::Compare {
                nets,
                trees,
                target,
                granularity,
            } => match self.run_compare(nets, trees, *target, *granularity) {
                Ok(response) => response,
                Err(e) => Response::solve_error(e),
            },
            Request::TauMin { net } => Response::TauMin {
                tau_min_fs: self.engine.tau_min(net),
            },
            Request::Hello => Response::Hello {
                info: *self
                    .info
                    .lock()
                    .expect("server info lock is never poisoned"),
                cache_cap: self.engine.cache_cap(),
                value_cache_cap: self.engine.value_cache_cap(),
            },
            Request::Stats => Response::Stats {
                fields: self.stats_fields(),
                reset: false,
            },
            // A bare state reports its own engine's registry; the TCP
            // edge intercepts `metrics` and merges its request-latency
            // registry (and, sharded, every live engine's) on top.
            Request::Metrics => Response::Metrics {
                snapshot: self.engine.metrics_registry().snapshot(),
            },
            Request::ResetStats => {
                // Render the pre-reset counters (including this very
                // request), then rezero. Cache *contents* are untouched
                // — only the monitoring counters restart, which is what
                // long-lived dashboards want at the start of a
                // measurement window.
                let fields = self.stats_fields();
                self.engine.reset_stats();
                self.requests.store(0, Ordering::Relaxed);
                self.connections.store(0, Ordering::Relaxed);
                Response::Stats {
                    fields,
                    reset: true,
                }
            }
            // A bare state acknowledges the drain with the requested
            // (or zero) deadline; the TCP edge intercepts `drain` and
            // substitutes its configured default before this arm runs,
            // so the zero here only shows up in in-process use.
            Request::Drain { deadline_ms } => Response::Draining {
                deadline_ms: deadline_ms.unwrap_or(0),
            },
            Request::Shutdown => Response::Shutdown,
        }
    }

    fn run_solve(&self, net: &TwoPinNet, target: Target) -> Result<SolveResult, String> {
        let target_fs = self.resolve_target(net, target);
        let outcome = self
            .engine
            .solve(net, target_fs)
            .map_err(|e| e.to_string())?;
        Ok(solve_result(target_fs, &outcome.solution))
    }

    fn run_solve_tree(
        &self,
        tree_net: &TreeNet,
        target: Target,
        overridden: Option<&[bool]>,
    ) -> Result<TreeSolveResult, String> {
        // The buffer-legality mask is binding: the tree's own `blocked`
        // flags by default, overridden by an explicit `allowed` array.
        // An all-true mask normalizes away inside the engine, so
        // unblocked trees answer byte-identically to the pre-mask
        // protocol.
        let allowed = overridden
            .map(<[bool]>::to_vec)
            .unwrap_or_else(|| tree_net.allowed_mask());
        let tree = RcTree::from_tree_net(tree_net, self.engine.technology().device());
        let driver = tree_net.driver_width();
        let target_fs = match target {
            Target::AbsoluteFs(fs) => fs,
            Target::TauMinMultiple(m) => {
                m * self
                    .engine
                    .tree_tau_min_masked(&tree, driver, &self.tree_config, Some(&allowed))
                    .map_err(|e| e.to_string())?
            }
        };
        let outcome = self
            .engine
            .solve_tree_masked(&tree, driver, target_fs, &self.tree_config, Some(&allowed))
            .map_err(|e| e.to_string())?;
        Ok(tree_solve_result(target_fs, &outcome.solution))
    }

    fn run_net_batch(
        &self,
        nets: &[TwoPinNet],
        target: Target,
    ) -> Vec<Result<SolveResult, String>> {
        if nets.is_empty() {
            return Vec::new();
        }
        let outcomes = self.engine.solve_batch(nets, &batch_target(target));
        outcomes
            .iter()
            .zip(nets)
            .map(|(outcome, net)| match outcome {
                Ok(out) => {
                    // Warm hit: τ_min was just computed in the batch.
                    let target_fs = self.resolve_target(net, target);
                    Ok(solve_result(target_fs, &out.solution))
                }
                Err(e) => Err(e.to_string()),
            })
            .collect()
    }

    fn run_tree_batch(
        &self,
        trees: &[TreeEntry],
        target: Target,
    ) -> Vec<Result<TreeSolveResult, String>> {
        if trees.is_empty() {
            return Vec::new();
        }
        let device = self.engine.technology().device();
        let entries: Vec<(RcTree, f64, Option<Vec<bool>>)> = trees
            .iter()
            .map(|entry| {
                (
                    RcTree::from_tree_net(&entry.tree, device),
                    entry.tree.driver_width(),
                    Some(entry.mask()),
                )
            })
            .collect();
        let outcomes =
            self.engine
                .solve_tree_batch_masked(&entries, &batch_target(target), &self.tree_config);
        outcomes
            .iter()
            .zip(&entries)
            .map(|(outcome, (tree, driver, allowed))| match outcome {
                Ok(out) => {
                    let target_fs = match target {
                        Target::AbsoluteFs(fs) => fs,
                        // Warm hit: resolved inside the batch already.
                        Target::TauMinMultiple(m) => {
                            m * self
                                .engine
                                .tree_tau_min_masked(
                                    tree,
                                    *driver,
                                    &self.tree_config,
                                    allowed.as_deref(),
                                )
                                .map_err(|e| e.to_string())?
                        }
                    };
                    Ok(tree_solve_result(target_fs, &out.solution))
                }
                Err(e) => Err(e.to_string()),
            })
            .collect()
    }

    fn run_compare(
        &self,
        nets: &[TwoPinNet],
        trees: &[TreeEntry],
        target: Target,
        granularity: f64,
    ) -> Result<Response, String> {
        let baseline = BaselineConfig::paper_table1(granularity);
        let rows: Vec<(Option<f64>, f64)> = if nets.is_empty() {
            Vec::new()
        } else {
            self.engine
                .compare_batch(nets, &batch_target(target), &baseline)
                .map_err(|e| e.to_string())?
                .0
        };
        let tree_rows = self.run_tree_compare(trees, target, &baseline)?;
        // One summary over every row (nets first, then trees), computed
        // from the rows themselves — so a sharded front-end merging
        // per-shard rows recomputes the byte-identical summary.
        let mut all = rows.clone();
        all.extend(tree_rows.iter().copied());
        let summary = summarize_savings(&all);
        Ok(Response::Compare {
            rows,
            tree_rows,
            summary,
        })
    }

    fn run_tree_compare(
        &self,
        trees: &[TreeEntry],
        target: Target,
        baseline: &BaselineConfig,
    ) -> Result<Vec<(Option<f64>, f64)>, String> {
        let device = self.engine.technology().device();
        let mut rows = Vec::with_capacity(trees.len());
        for entry in trees {
            let tree = RcTree::from_tree_net(&entry.tree, device);
            let driver = entry.tree.driver_width();
            let allowed = entry.mask();
            let target_fs = match target {
                Target::AbsoluteFs(fs) => fs,
                Target::TauMinMultiple(m) => {
                    m * self
                        .engine
                        .tree_tau_min_masked(&tree, driver, &self.tree_config, Some(&allowed))
                        .map_err(|e| e.to_string())?
                }
            };
            let rip = self
                .engine
                .solve_tree_masked(&tree, driver, target_fs, &self.tree_config, Some(&allowed))
                .map_err(|e| e.to_string())?
                .solution
                .total_width;
            let base = match self.engine.tree_baseline_masked(
                &tree,
                driver,
                baseline,
                target_fs,
                Some(&allowed),
            ) {
                Ok(sol) => Some(sol.total_width),
                // The paper's V_DP event: the fixed library misses the
                // target. A `None` row, not a request failure.
                Err(DpError::InfeasibleTarget { .. }) => None,
                Err(e) => return Err(e.to_string()),
            };
            rows.push((base, rip));
        }
        Ok(rows)
    }

    fn stats_fields(&self) -> Vec<(&'static str, Json)> {
        let stats = self.engine.stats();
        vec![
            ("requests", Json::from(self.requests())),
            ("connections", Json::from(self.connections())),
            ("nets_solved", Json::from(stats.nets_solved)),
            ("trees_solved", Json::from(stats.trees_solved)),
            ("hits", Json::from(stats.hits())),
            ("misses", Json::from(stats.misses())),
            ("hit_rate", Json::Num(stats.hit_rate())),
            ("promotions", Json::from(stats.promotions)),
            ("evictions", Json::from(stats.evictions)),
            ("cache_cap", Json::from(self.engine.cache_cap())),
            ("value_cache_cap", Json::from(self.engine.value_cache_cap())),
        ]
    }

    fn resolve_target(&self, net: &TwoPinNet, target: Target) -> f64 {
        match target {
            Target::AbsoluteFs(fs) => fs,
            Target::TauMinMultiple(m) => m * self.engine.tau_min(net),
        }
    }
}

fn batch_target(target: Target) -> BatchTarget {
    match target {
        Target::AbsoluteFs(fs) => BatchTarget::AbsoluteFs(fs),
        Target::TauMinMultiple(m) => BatchTarget::TauMinMultiple(m),
    }
}

fn parse_target(request: &Json) -> Result<Target, RequestError> {
    let fs = request.get("target_fs").and_then(Json::as_f64);
    let ns = request.get("target_ns").and_then(Json::as_f64);
    let mult = request.get("target_mult").and_then(Json::as_f64);
    let target = match (fs, ns, mult) {
        (Some(fs), None, None) => Target::AbsoluteFs(fs),
        (None, Some(ns), None) => Target::AbsoluteFs(fs_from_ns(ns)),
        (None, None, Some(m)) => Target::TauMinMultiple(m),
        (None, None, None) => {
            return Err("one of target_fs / target_ns / target_mult is required".into())
        }
        _ => return Err("target_fs / target_ns / target_mult are mutually exclusive".into()),
    };
    let value = match &target {
        Target::AbsoluteFs(v) | Target::TauMinMultiple(v) => *v,
    };
    if !(value.is_finite() && value > 0.0) {
        return Err("the timing target must be positive and finite".into());
    }
    Ok(target)
}

fn allowed_from_json(value: &Json, tree: &TreeNet) -> Result<Vec<bool>, String> {
    let items = value
        .as_arr()
        .ok_or("'allowed' must be an array of booleans")?;
    if items.len() != tree.len() {
        return Err(format!(
            "'allowed' needs one entry per node including the root \
             (expected {}, got {})",
            tree.len(),
            items.len()
        ));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_bool()
                .ok_or_else(|| format!("allowed[{i}] must be a boolean"))
        })
        .collect()
}

fn nets_and_trees(
    request: &Json,
    cmd: &str,
) -> Result<(Vec<TwoPinNet>, Vec<TreeEntry>), RequestError> {
    let nets = match request.get("nets") {
        Some(value) => nets_from_json(value)?,
        None => Vec::new(),
    };
    let trees = match request.get("trees") {
        Some(value) => tree_entries_from_json(value)?,
        None => Vec::new(),
    };
    if nets.is_empty() && trees.is_empty() {
        return Err(format!("{cmd} needs a 'nets' or 'trees' array").into());
    }
    Ok((nets, trees))
}

fn solve_result(target_fs: f64, solution: &rip_core::prelude::DpSolution) -> SolveResult {
    SolveResult {
        target_fs,
        delay_fs: solution.delay_fs,
        total_width: solution.total_width,
        repeaters: solution
            .assignment
            .repeaters()
            .iter()
            .map(|r| (r.position, r.width))
            .collect(),
    }
}

fn tree_solve_result(target_fs: f64, solution: &rip_core::TreeSolution) -> TreeSolveResult {
    TreeSolveResult {
        target_fs,
        delay_fs: solution.delay_fs,
        total_width: solution.total_width,
        buffers: solution
            .buffer_widths
            .iter()
            .enumerate()
            .filter_map(|(v, w)| w.map(|w| (v, w)))
            .collect(),
    }
}

/// Decodes a structured JSON net (see the module docs for the schema).
///
/// # Errors
///
/// Returns a human-readable reason when the shape or the net itself is
/// invalid.
pub fn net_from_json(value: &Json) -> Result<TwoPinNet, String> {
    let mut builder = NetBuilder::new();
    if let Some(d) = value.get("driver") {
        builder = builder.driver_width(d.as_f64().ok_or("driver must be a number")?);
    }
    if let Some(r) = value.get("receiver") {
        builder = builder.receiver_width(r.as_f64().ok_or("receiver must be a number")?);
    }
    let segments = value
        .get("segments")
        .and_then(Json::as_arr)
        .ok_or("net needs a 'segments' array")?;
    for (i, segment) in segments.iter().enumerate() {
        let nums = fixed_numbers::<3>(segment)
            .ok_or_else(|| format!("segment {i} must be [length_um, r_per_um, c_per_um]"))?;
        builder = builder.segment(Segment::new(nums[0], nums[1], nums[2]));
    }
    if let Some(zones) = value.get("zones") {
        let zones = zones.as_arr().ok_or("zones must be an array")?;
        for (i, zone) in zones.iter().enumerate() {
            let nums = fixed_numbers::<2>(zone)
                .ok_or_else(|| format!("zone {i} must be [start_um, end_um]"))?;
            builder = builder
                .forbidden_zone(nums[0], nums[1])
                .map_err(|e| e.to_string())?;
        }
    }
    builder.build().map_err(|e| e.to_string())
}

/// Encodes a net into the protocol's structured JSON (inverse of
/// [`net_from_json`]).
pub fn net_to_json(net: &TwoPinNet) -> Json {
    let segments: Vec<Json> = net
        .segments()
        .iter()
        .map(|s| {
            Json::Arr(vec![
                Json::Num(s.length_um()),
                Json::Num(s.r_per_um()),
                Json::Num(s.c_per_um()),
            ])
        })
        .collect();
    let zones: Vec<Json> = net
        .zones()
        .iter()
        .map(|z| Json::Arr(vec![Json::Num(z.start()), Json::Num(z.end())]))
        .collect();
    Json::obj([
        ("driver", Json::Num(net.driver_width())),
        ("receiver", Json::Num(net.receiver_width())),
        ("segments", Json::Arr(segments)),
        ("zones", Json::Arr(zones)),
    ])
}

/// Decodes a structured JSON tree (see the module docs for the schema).
///
/// # Errors
///
/// Returns a human-readable reason when the shape or the tree itself is
/// invalid.
pub fn tree_from_json(value: &Json) -> Result<TreeNet, String> {
    let driver = value
        .get("driver")
        .and_then(Json::as_f64)
        .ok_or("tree needs a numeric 'driver'")?;
    let entries = value
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or("tree needs a 'nodes' array")?;
    let mut nodes = vec![TreeNetNode {
        parent: None,
        r_per_um: 0.0,
        c_per_um: 0.0,
        length_um: 0.0,
        sink_width: None,
        buffer_ok: true,
    }];
    for (i, entry) in entries.iter().enumerate() {
        let fields = entry.as_arr().filter(|f| f.len() == 6).ok_or_else(|| {
            format!(
                "node {i} must be [parent, r_per_um, c_per_um, length_um, sink_w|null, blocked]"
            )
        })?;
        let parent = fields[0]
            .as_usize()
            .ok_or_else(|| format!("node {i}: parent must be a node index"))?;
        let num = |j: usize, what: &str| {
            fields[j]
                .as_f64()
                .ok_or_else(|| format!("node {i}: {what} must be a number"))
        };
        let sink_width = match &fields[4] {
            Json::Null => None,
            w => Some(
                w.as_f64()
                    .ok_or_else(|| format!("node {i}: sink width must be a number or null"))?,
            ),
        };
        let blocked = fields[5]
            .as_bool()
            .ok_or_else(|| format!("node {i}: blocked must be a boolean"))?;
        nodes.push(TreeNetNode {
            parent: Some(parent),
            r_per_um: num(1, "r_per_um")?,
            c_per_um: num(2, "c_per_um")?,
            length_um: num(3, "length_um")?,
            sink_width,
            buffer_ok: !blocked,
        });
    }
    TreeNet::from_nodes(nodes, driver).map_err(|e| e.to_string())
}

/// Encodes a tree into the protocol's structured JSON (inverse of
/// [`tree_from_json`]).
pub fn tree_to_json(tree: &TreeNet) -> Json {
    let nodes: Vec<Json> = tree
        .nodes()
        .iter()
        .skip(1)
        .map(|n| {
            Json::Arr(vec![
                Json::Num(n.parent.expect("non-root") as f64),
                Json::Num(n.r_per_um),
                Json::Num(n.c_per_um),
                Json::Num(n.length_um),
                n.sink_width.map(Json::Num).unwrap_or(Json::Null),
                Json::Bool(!n.buffer_ok),
            ])
        })
        .collect();
    Json::obj([
        ("driver", Json::Num(tree.driver_width())),
        ("nodes", Json::Arr(nodes)),
    ])
}

fn nets_from_json(value: &Json) -> Result<Vec<TwoPinNet>, String> {
    let items = value.as_arr().ok_or("'nets' must be an array")?;
    if items.is_empty() {
        return Err("'nets' must not be empty".into());
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| net_from_json(item).map_err(|e| format!("net {i}: {e}")))
        .collect()
}

fn tree_entries_from_json(value: &Json) -> Result<Vec<TreeEntry>, String> {
    let items = value.as_arr().ok_or("'trees' must be an array")?;
    if items.is_empty() {
        return Err("'trees' must not be empty".into());
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            // A wrapped entry `{"tree": …, "allowed": […]}` or a bare
            // tree object (no override) — both spellings are one entry.
            let (tree_value, allowed_value) = match item.get("tree") {
                Some(tree) => (tree, item.get("allowed")),
                None => (item, None),
            };
            let tree = tree_from_json(tree_value).map_err(|e| format!("tree {i}: {e}"))?;
            let allowed = match allowed_value {
                None => None,
                Some(value) => {
                    Some(allowed_from_json(value, &tree).map_err(|e| format!("tree {i}: {e}"))?)
                }
            };
            Ok(TreeEntry { tree, allowed })
        })
        .collect::<Result<_, String>>()
        .map_err(RequestError::bad)
        .map_err(|e| e.reason)
}

fn fixed_numbers<const N: usize>(value: &Json) -> Option<[f64; N]> {
    let items = value.as_arr()?;
    if items.len() != N {
        return None;
    }
    let mut out = [0.0; N];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_f64()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetGenerator, RandomNetConfig, RandomTreeConfig, TreeNetGenerator};
    use rip_tech::Technology;

    fn state() -> ServeState {
        ServeState::new(Engine::paper(Technology::generic_180nm()))
    }

    fn request(line: &str) -> (Json, bool) {
        state().handle_line(line)
    }

    #[test]
    fn net_json_round_trips() {
        for net in NetGenerator::suite(RandomNetConfig::default(), 7, 5).unwrap() {
            let encoded = net_to_json(&net).to_string();
            let back = net_from_json(&parse_json(&encoded).unwrap()).unwrap();
            assert_eq!(net, back, "net JSON encode/decode must be lossless");
        }
    }

    #[test]
    fn tree_json_round_trips() {
        for tree in TreeNetGenerator::suite(RandomTreeConfig::default(), 7, 5).unwrap() {
            let encoded = tree_to_json(&tree).to_string();
            let back = tree_from_json(&parse_json(&encoded).unwrap()).unwrap();
            assert_eq!(tree, back, "tree JSON encode/decode must be lossless");
        }
    }

    /// A generated sample of every request shape — the property-test
    /// corpus for the typed encode/decode round trip.
    fn request_corpus() -> Vec<Request> {
        let nets = NetGenerator::suite(RandomNetConfig::default(), 31, 4).unwrap();
        let trees = TreeNetGenerator::suite(RandomTreeConfig::compact(), 32, 3).unwrap();
        let entry = |i: usize, with_mask: bool| TreeEntry {
            tree: trees[i].clone(),
            allowed: with_mask.then(|| trees[i].allowed_mask()),
        };
        vec![
            Request::Solve {
                net: nets[0].clone(),
                target: Target::TauMinMultiple(1.4),
            },
            Request::Solve {
                net: nets[1].clone(),
                target: Target::AbsoluteFs(2.5e6),
            },
            Request::SolveTree {
                tree: trees[0].clone(),
                target: Target::TauMinMultiple(1.2),
                allowed: None,
            },
            Request::SolveTree {
                tree: trees[1].clone(),
                target: Target::AbsoluteFs(3.0e6),
                allowed: Some(trees[1].allowed_mask()),
            },
            Request::Batch {
                nets: nets.clone(),
                trees: vec![entry(0, false), entry(1, true)],
                target: Target::TauMinMultiple(1.35),
            },
            Request::Batch {
                nets: Vec::new(),
                trees: vec![entry(2, true)],
                target: Target::AbsoluteFs(4.0e6),
            },
            Request::Compare {
                nets: nets[..2].to_vec(),
                trees: vec![entry(0, true)],
                target: Target::TauMinMultiple(1.5),
                granularity: 20.0,
            },
            Request::TauMin {
                net: nets[2].clone(),
            },
            Request::Hello,
            Request::Stats,
            Request::Metrics,
            Request::ResetStats,
            Request::Drain { deadline_ms: None },
            Request::Drain {
                deadline_ms: Some(2500),
            },
            Request::Shutdown,
        ]
    }

    #[test]
    fn typed_requests_round_trip_through_the_wire_encoding() {
        for (k, request) in request_corpus().into_iter().enumerate() {
            // Encode → serialize → parse → decode must reproduce the
            // typed request exactly, with the id echoed.
            let id = Json::from(k as u64);
            let line = request.to_json(Some(&id)).to_string();
            let (echoed, parsed) = parse_line(&line);
            assert_eq!(echoed, id, "id must round-trip: {line}");
            assert_eq!(parsed.as_ref(), Ok(&request), "round trip broke: {line}");
            // And the encoding is a fixed point: encode(decode(encode))
            // is byte-identical, so shards re-encoding requests could
            // never drift.
            assert_eq!(
                parsed.unwrap().to_json(Some(&id)).to_string(),
                line,
                "re-encoding must be byte-stable"
            );
            // Without an id the parse echoes null.
            let (echoed, parsed) = parse_line(&request.to_json(None).to_string());
            assert_eq!(echoed, Json::Null);
            assert!(parsed.is_ok());
        }
    }

    #[test]
    fn target_ns_parses_to_the_absolute_spelling() {
        let (_, parsed) =
            parse_line(r#"{"cmd":"solve","net":{"segments":[[3000,0.08,0.2]]},"target_ns":1.5}"#);
        match parsed.unwrap() {
            Request::Solve { target, .. } => {
                assert_eq!(target, Target::AbsoluteFs(fs_from_ns(1.5)));
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn responses_carry_the_protocol_version() {
        let state = state();
        for line in [
            r#"{"id":1,"cmd":"stats"}"#,
            r#"{"id":2,"cmd":"hello"}"#,
            r#"{"id":3,"cmd":"warp"}"#,
        ] {
            let (response, _) = state.handle_line(line);
            assert_eq!(
                response.get("proto").and_then(Json::as_f64),
                Some(PROTO_VERSION as f64),
                "{response}"
            );
        }
    }

    #[test]
    fn hello_reports_capabilities_and_commands() {
        let state = state();
        state.set_server_info(ServerInfo {
            shards: 4,
            workers: 8,
            max_conns: 64,
            queue_cap: 32,
        });
        let (response, stop) = state.handle_line(r#"{"id":1,"cmd":"hello"}"#);
        assert!(!stop);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            response.get("server").and_then(Json::as_str),
            Some("rip-serve")
        );
        assert_eq!(response.get("shards").and_then(Json::as_f64), Some(4.0));
        assert_eq!(response.get("workers").and_then(Json::as_f64), Some(8.0));
        assert_eq!(response.get("max_conns").and_then(Json::as_f64), Some(64.0));
        assert_eq!(response.get("queue_cap").and_then(Json::as_f64), Some(32.0));
        assert_eq!(
            response.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        let commands = response.get("commands").unwrap().as_arr().unwrap();
        assert_eq!(commands.len(), COMMANDS.len());
        for (got, want) in commands.iter().zip(COMMANDS) {
            assert_eq!(got.as_str(), Some(*want));
        }
    }

    #[test]
    fn unknown_commands_name_the_cmd_and_list_known_ones() {
        let (response, _) = request(r#"{"id":3,"cmd":"warp"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            response.get("code").and_then(Json::as_str),
            Some("unknown_cmd")
        );
        let error = response.get("error").unwrap().as_str().unwrap();
        assert!(error.contains("warp"), "{error}");
        for cmd in COMMANDS {
            assert!(error.contains(cmd), "missing {cmd} in {error}");
        }
    }

    #[test]
    fn solve_matches_the_engine_and_is_deterministic() {
        let state = state();
        let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
            .unwrap()
            .remove(0);
        let line = format!(
            r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
            net_to_json(&net)
        );
        let (a, stop) = state.handle_line(&line);
        assert!(!stop);
        assert_eq!(a.get("ok"), Some(&Json::Bool(true)));
        // Byte-identical on repeat (same engine, warm cache).
        let (b, _) = state.handle_line(&line);
        assert_eq!(a.to_string(), b.to_string());
        // And equal to the in-process engine answer.
        let expected = state
            .engine()
            .solve(&net, 1.4 * state.engine().tau_min(&net))
            .unwrap();
        assert_eq!(
            a.get("delay_fs").unwrap().as_f64().unwrap().to_bits(),
            expected.solution.delay_fs.to_bits()
        );
        assert_eq!(
            a.get("total_width").unwrap().as_f64().unwrap().to_bits(),
            expected.solution.total_width.to_bits()
        );
        assert_eq!(
            a.get("repeaters").unwrap().as_arr().unwrap().len(),
            expected.solution.assignment.len()
        );
    }

    #[test]
    fn batch_reports_per_net_results() {
        let state = state();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 3, 2).unwrap();
        let encoded: Vec<String> = nets.iter().map(|n| net_to_json(n).to_string()).collect();
        let line = format!(
            r#"{{"id":4,"cmd":"batch","nets":[{}],"target_mult":1.4}}"#,
            encoded.join(",")
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let results = response.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        }
        assert_eq!(
            response
                .get("tree_results")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            0,
            "a nets-only batch renders an empty tree_results"
        );
        // An impossible absolute target yields per-net errors, not a
        // request-level failure.
        let line = format!(
            r#"{{"id":5,"cmd":"batch","nets":[{}],"target_fs":1}}"#,
            encoded.join(",")
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        for r in response.get("results").unwrap().as_arr().unwrap() {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
            assert!(r.get("error").unwrap().as_str().is_some());
        }
    }

    /// A small masked tree: node 2 (the mid node) is blocked.
    fn masked_tree_json() -> String {
        r#"{"driver":120,"nodes":[[0,0.08,0.2,1400,null,false],[1,0.06,0.18,1200,null,true],[2,0.08,0.2,1100,60,false],[1,0.08,0.2,1000,50,false]]}"#
            .to_string()
    }

    #[test]
    fn solve_tree_masks_are_binding_and_allowed_overrides_blocked_flags() {
        let state = state();
        let tree = masked_tree_json();
        let line = format!(r#"{{"id":1,"cmd":"solve_tree","tree":{tree},"target_mult":1.2}}"#);
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        // No buffer may sit on a blocked fine-tree node: `buffers`
        // indexes the fine subdivision, so project the mask the same
        // way the engine does and check every reported site.
        let tree_net_parsed = tree_from_json(&parse_json(&tree).unwrap()).unwrap();
        let rc = RcTree::from_tree_net(&tree_net_parsed, state.engine().technology().device());
        let (fine, map) = rc.subdivided(TreeRipConfig::paper().fine_step_um);
        let projected = rc.project_allowed(&fine, &map, &tree_net_parsed.allowed_mask());
        for buffer in response.get("buffers").unwrap().as_arr().unwrap() {
            let node = buffer.as_arr().unwrap()[0].as_usize().unwrap();
            assert!(
                projected[node],
                "buffer on a blocked fine node {node}: {response}"
            );
        }
        // An explicit `allowed` equal to the tree's own mask answers
        // byte-identically: the two spellings are one request.
        let line_override = format!(
            r#"{{"id":1,"cmd":"solve_tree","tree":{tree},"target_mult":1.2,"allowed":[true,true,false,true,true]}}"#
        );
        let (override_response, _) = state.handle_line(&line_override);
        assert_eq!(response.to_string(), override_response.to_string());
        // A misaligned or non-boolean override is a request error.
        let (bad, _) = state.handle_line(&format!(
            r#"{{"cmd":"solve_tree","tree":{tree},"target_mult":1.2,"allowed":[true,true]}}"#
        ));
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(bad.get("code").and_then(Json::as_str), Some("bad_request"));
        assert!(bad
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("allowed"));
        let (bad, _) = state.handle_line(&format!(
            r#"{{"cmd":"solve_tree","tree":{tree},"target_mult":1.2,"allowed":[true,1,false,true,true]}}"#
        ));
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(bad
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("boolean"));
    }

    #[test]
    fn batch_tree_entries_honor_masks_in_both_spellings() {
        let state = state();
        let tree = masked_tree_json();
        // The tree's own blocked flags vs the equivalent explicit
        // `allowed` override, and a bare entry vs a wrapped one: all
        // one request, so `tree_results` must be byte-identical.
        let blocked = format!(r#"{{"id":1,"cmd":"batch","trees":[{tree}],"target_mult":1.2}}"#);
        let wrapped =
            format!(r#"{{"id":1,"cmd":"batch","trees":[{{"tree":{tree}}}],"target_mult":1.2}}"#);
        let overridden = format!(
            r#"{{"id":1,"cmd":"batch","trees":[{{"tree":{tree},"allowed":[true,true,false,true,true]}}]}}"#
        );
        let overridden = overridden.replace("]}]}", r#"]}],"target_mult":1.2}"#);
        let (a, _) = state.handle_line(&blocked);
        assert_eq!(a.get("ok"), Some(&Json::Bool(true)), "{a}");
        let (b, _) = state.handle_line(&wrapped);
        let (c, _) = state.handle_line(&overridden);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), c.to_string());
        let tree_results = a.get("tree_results").unwrap().as_arr().unwrap();
        assert_eq!(tree_results.len(), 1);
        assert_eq!(tree_results[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(a.get("results").unwrap().as_arr().unwrap().len(), 0);
        // The solved tree matches a standalone solve_tree of the same
        // request (same engine-session semantics).
        let (solo, _) = state.handle_line(&format!(
            r#"{{"id":1,"cmd":"solve_tree","tree":{tree},"target_mult":1.2}}"#
        ));
        assert_eq!(
            tree_results[0].get("total_width"),
            solo.get("total_width"),
            "batch tree entries must solve exactly like solve_tree"
        );
        // A misaligned entry override is a request error naming the entry.
        let (bad, _) = state.handle_line(&format!(
            r#"{{"cmd":"batch","trees":[{{"tree":{tree},"allowed":[true]}}],"target_mult":1.2}}"#
        ));
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        let error = bad.get("error").unwrap().as_str().unwrap();
        assert!(
            error.contains("tree 0") && error.contains("allowed"),
            "{error}"
        );
    }

    #[test]
    fn compare_handles_tree_entries_and_summarizes_over_all_rows() {
        let state = state();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 3, 2).unwrap();
        let encoded: Vec<String> = nets.iter().map(|n| net_to_json(n).to_string()).collect();
        let tree = masked_tree_json();
        let line = format!(
            r#"{{"id":1,"cmd":"compare","nets":[{}],"trees":[{tree}],"target_mult":1.5,"granularity":20}}"#,
            encoded.join(",")
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        let rows = response.get("rows").unwrap().as_arr().unwrap();
        let tree_rows = response.get("tree_rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(tree_rows.len(), 1);
        // The summary counts every row, nets and trees alike.
        let compared = response.get("compared").unwrap().as_f64().unwrap();
        let violations = response
            .get("baseline_violations")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(compared + violations, 3.0, "{response}");
        // A nets-only compare is unchanged semantically: its summary
        // equals the engine's own compare_batch summary.
        let nets_only = format!(
            r#"{{"id":2,"cmd":"compare","nets":[{}],"target_mult":1.5,"granularity":20}}"#,
            encoded.join(",")
        );
        let (response, _) = state.handle_line(&nets_only);
        let (_, summary) = state
            .engine()
            .compare_batch(
                &nets,
                &BatchTarget::TauMinMultiple(1.5),
                &BaselineConfig::paper_table1(20.0),
            )
            .unwrap();
        assert_eq!(
            response
                .get("mean_percent")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            summary.mean_percent.to_bits()
        );
    }

    #[test]
    fn reset_stats_rezeroes_counters_without_dropping_caches() {
        let state = state();
        let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
            .unwrap()
            .remove(0);
        let solve = format!(
            r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
            net_to_json(&net)
        );
        let (cold, _) = state.handle_line(&solve);
        assert_eq!(cold.get("ok"), Some(&Json::Bool(true)));
        let (reset, stop) = state.handle_line(r#"{"id":2,"cmd":"reset_stats"}"#);
        assert!(!stop);
        assert_eq!(reset.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(reset.get("reset"), Some(&Json::Bool(true)));
        // The response carries the pre-reset counters (2 requests so far).
        assert_eq!(reset.get("requests").unwrap().as_f64(), Some(2.0));
        assert!(reset.get("misses").unwrap().as_f64().unwrap() > 0.0);
        // After the reset the counters restart…
        let (stats, _) = state.handle_line(r#"{"id":3,"cmd":"stats"}"#);
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("nets_solved").unwrap().as_f64(), Some(0.0));
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(0.0));
        // …but the caches survive: a warm repeat answers byte-identically
        // and counts only hits.
        let (warm, _) = state.handle_line(&solve);
        assert_eq!(cold.to_string(), warm.to_string());
        let (stats, _) = state.handle_line(r#"{"id":4,"cmd":"stats"}"#);
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(0.0));
        assert!(stats.get("hits").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn error_codes_round_trip_and_classify_retryability() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownCmd,
            ErrorCode::SolveFailed,
            ErrorCode::Busy,
            ErrorCode::Backpressure,
            ErrorCode::Timeout,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("made_up"), None);
        assert!(ErrorCode::Busy.retryable());
        assert!(ErrorCode::Backpressure.retryable());
        assert!(ErrorCode::Timeout.retryable());
        assert!(ErrorCode::Internal.retryable());
        assert!(!ErrorCode::BadRequest.retryable());
        assert!(!ErrorCode::SolveFailed.retryable());
        assert!(!ErrorCode::ShuttingDown.retryable());
    }

    #[test]
    fn drain_acknowledges_with_the_deadline_and_does_not_stop_the_state() {
        let state = state();
        let (response, stop) = state.handle_line(r#"{"id":7,"cmd":"drain","deadline_ms":1500}"#);
        assert!(!stop, "drain is edge-managed; only shutdown stops");
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("draining"), Some(&Json::Bool(true)));
        assert_eq!(
            response.get("deadline_ms").and_then(Json::as_f64),
            Some(1500.0)
        );
        // Without a deadline the bare state echoes zero (the edge
        // substitutes its configured default before rendering).
        let (response, _) = state.handle_line(r#"{"id":8,"cmd":"drain"}"#);
        assert_eq!(
            response.get("deadline_ms").and_then(Json::as_f64),
            Some(0.0)
        );
        // A negative deadline is a request error.
        let (bad, _) = state.handle_line(r#"{"cmd":"drain","deadline_ms":-4}"#);
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(bad.get("code").and_then(Json::as_str), Some("bad_request"));
    }

    #[test]
    fn control_plane_requests_are_exactly_the_engine_free_ones() {
        for request in request_corpus() {
            let expect = matches!(
                request,
                Request::Hello
                    | Request::Stats
                    | Request::Metrics
                    | Request::ResetStats
                    | Request::Drain { .. }
                    | Request::Shutdown
            );
            assert_eq!(request.is_control(), expect, "{:?}", request.cmd());
        }
    }

    #[test]
    fn stats_and_shutdown_respond() {
        let state = state();
        let (response, stop) = state.handle_line(r#"{"id":9,"cmd":"stats"}"#);
        assert!(!stop);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("requests").unwrap().as_f64(), Some(1.0));
        assert_eq!(response.get("hit_rate").unwrap().as_f64(), Some(0.0));
        let (response, stop) = state.handle_line(r#"{"id":10,"cmd":"shutdown"}"#);
        assert!(stop);
        assert_eq!(response.get("stopping"), Some(&Json::Bool(true)));
    }

    #[test]
    fn metrics_snapshots_stage_histograms_and_reset_clears_them() {
        let state = state();
        let (solve, _) = state.handle_line(
            r#"{"cmd":"solve","net":{"segments":[[3000,0.08,0.2]]},"target_mult":1.4}"#,
        );
        assert_eq!(solve.get("ok"), Some(&Json::Bool(true)), "{solve}");
        let (response, stop) = state.handle_line(r#"{"id":7,"cmd":"metrics"}"#);
        assert!(!stop);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let histograms = response.get("histograms").expect("histograms object");
        let coarse = histograms
            .get("engine_chain_coarse_dp_ns")
            .expect("chain coarse DP histogram");
        assert_eq!(coarse.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(coarse.get("p50").and_then(Json::as_f64).is_some());
        assert!(coarse.get("buckets").is_some());
        // `reset_stats` rezeroes the histograms along with the counters.
        let _ = state.handle_line(r#"{"cmd":"reset_stats"}"#);
        let (response, _) = state.handle_line(r#"{"cmd":"metrics"}"#);
        let histograms = response.get("histograms").expect("histograms object");
        let coarse = histograms
            .get("engine_chain_coarse_dp_ns")
            .expect("histogram names survive a reset");
        assert_eq!(coarse.get("count").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let (response, stop) = request("not json at all");
        assert!(!stop);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            response.get("code").and_then(Json::as_str),
            Some("bad_request")
        );
        let (response, _) = request(r#"{"id":3}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("cmd"));
        assert_eq!(response.get("id").unwrap().as_f64(), Some(3.0));
        let (response, _) = request(r#"{"id":3,"cmd":"warp"}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("warp"));
        let (response, _) = request(r#"{"cmd":"solve","net":{"segments":[[1000,0.08,0.2]]}}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("target"));
        let (response, _) = request(
            r#"{"cmd":"solve","net":{"segments":[[1000,0.08,0.2]]},"target_ns":1,"target_mult":2}"#,
        );
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("mutually exclusive"));
        let (response, _) = request(r#"{"cmd":"solve","net":{"segments":[]},"target_mult":1.4}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        let (response, _) = request(r#"{"cmd":"batch","target_mult":1.4}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("'nets' or 'trees'"));
    }

    #[test]
    fn infeasible_solves_are_errors_with_the_reason() {
        let state = state();
        let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
            .unwrap()
            .remove(0);
        let line = format!(
            r#"{{"id":2,"cmd":"solve","net":{},"target_fs":1}}"#,
            net_to_json(&net)
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            response.get("code").and_then(Json::as_str),
            Some("solve_failed")
        );
        assert!(response.get("error").unwrap().as_str().unwrap().len() > 4);
    }
}
