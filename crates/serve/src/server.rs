//! The hardened TCP edge: N connection workers share one listener and
//! feed either a single shared [`ServeState`] (direct mode) or a
//! [`ShardPool`] of private engines (sharded mode,
//! [`ServeConfig::shards`] > 0).
//!
//! Workers `accept` in non-blocking mode with a short poll interval, so
//! a `shutdown` request (or [`ServerHandle::shutdown`]) drains every
//! worker within one interval without platform-specific listener
//! tricks. Each worker handles one connection at a time — request
//! *handling* is where the parallelism pays, and the load generator
//! opens exactly as many connections as it wants concurrency.
//!
//! Edge hardening, all opt-in via [`ServeConfig`]:
//!
//! * `addr` accepts non-loopback binds (the CLI's `--bind`);
//! * `max_conns` rejects over-limit connections with a typed `busy`
//!   error line instead of a dropped socket, so clients can tell "down"
//!   from "full" (note the rejection is only observable while a worker
//!   is free to deliver it — size `workers` above `max_conns`);
//! * `read_timeout_ms` closes idle connections with a typed `timeout`
//!   error; `write_timeout_ms` bounds how long a stalled client can
//!   pin a worker mid-response;
//! * in sharded mode, per-shard queue overflow surfaces as a typed
//!   `backpressure` error ([`crate::shard`]).
//!
//! `stats` responses served over a connection additionally carry a
//! `rejected_conns` counter, supervision tallies (`panics`,
//! `respawns`), a per-connection `connection` object, and (sharded) a
//! per-shard `shards` array — none of which exist in the bare
//! [`ServeState`] rendering, which is why the load generator treats
//! `stats` as non-deterministic.
//!
//! Fault tolerance at the edge ([`crate::fault`]):
//!
//! * both back ends handle requests under `catch_unwind` — a panic
//!   answers with a typed `internal` error (id echoed) and the engine
//!   state respawns from its recipe, so no panic kills a worker;
//! * a `drain` request (or the configured default deadline) flips the
//!   server into draining: new connections and new work get typed
//!   `shutting_down` errors, in-flight requests finish, and the server
//!   stops once idle or at the deadline;
//! * a seeded [`FaultPlan`] can inject panics, delays and mid-response
//!   connection cuts for chaos testing — see [`crate::fault`].

use crate::fault::{internal_error, supervised_handle, FaultInjector, FaultPlan};
use crate::json::Json;
use crate::protocol::{parse_line, ErrorCode, Request, Response, ServeState, ServerInfo};
use crate::shard::{EngineTemplate, ShardPool, ShardSnapshot};
use rip_core::Engine;
use rip_obs::{Histogram, MetricsRegistry};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker sleeps between accept polls, and how long a
/// connection read blocks before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Longest accepted request line. Generous for real workloads (a
/// 1000-net batch request is ~200 KB) while keeping a newline-less
/// client from exhausting server memory.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`]). Non-loopback interfaces
    /// are accepted — pair them with `max_conns` and the timeouts.
    pub addr: String,
    /// Connection worker threads (each serving one connection at a
    /// time). In direct mode the engine's scratch pool is sized to
    /// this.
    pub workers: usize,
    /// LRU bound for each engine's geometry caches
    /// ([`Engine::set_cache_cap`]); 0 = unbounded.
    pub cache_cap: usize,
    /// LRU bound for each engine's `τ_min`/library maps
    /// ([`Engine::set_value_cache_cap`]); 0 = unbounded.
    pub value_cache_cap: usize,
    /// Engine shards; 0 = direct mode (one shared engine). With N > 0,
    /// N private engines sit behind bounded queues and requests route
    /// by cache key ([`crate::shard`]).
    pub shards: usize,
    /// Concurrent-connection cap; over-limit connections get a typed
    /// `busy` error and a clean close. 0 = unlimited.
    pub max_conns: usize,
    /// Bounded per-shard queue depth (sharded mode); overflow surfaces
    /// as typed `backpressure` errors.
    pub queue_cap: usize,
    /// Idle-connection read timeout, ms; an idle connection is closed
    /// with a typed `timeout` error. 0 = never (loadgen and tests keep
    /// idle connections open deliberately).
    pub read_timeout_ms: u64,
    /// Per-write timeout, ms, bounding how long a stalled client can
    /// pin a worker mid-response. 0 = never.
    pub write_timeout_ms: u64,
    /// Longest accepted request line, bytes; an over-long line gets a
    /// typed `bad_request` error before the connection closes.
    pub max_line_bytes: usize,
    /// Default drain deadline, seconds, used when a `drain` request
    /// carries no `deadline_ms` of its own.
    pub drain_deadline_secs: u64,
    /// Slow-request threshold, ms: a request whose end-to-end handling
    /// (parse + dispatch + solve + encode + write) takes at least this
    /// long is logged to stderr as
    /// `[rip-serve] slow request id=… cmd=… total_ms=… queue_wait_ms=…
    /// solve_ms=…`. 0 (the default) disables the log.
    pub log_slow_ms: u64,
    /// Deterministic fault-injection schedule (chaos testing only;
    /// [`FaultPlan::none`] in production).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            // A resident service bounds its caches by default; these
            // hold the hot working set of a large design comfortably
            // while keeping memory flat on unbounded request streams.
            cache_cap: 512,
            value_cache_cap: 4096,
            shards: 0,
            max_conns: 0,
            queue_cap: 64,
            read_timeout_ms: 0,
            write_timeout_ms: 30_000,
            max_line_bytes: MAX_LINE_BYTES,
            drain_deadline_secs: 5,
            log_slow_ms: 0,
            faults: FaultPlan::none(),
        }
    }
}

/// The edge's request-tracing instruments: one registry (cleared by
/// `reset_stats`, merged into `metrics` responses) plus pre-resolved
/// handles for the per-request spans. Lives at the edge — not in any
/// engine — so its history survives engine respawns trivially.
#[derive(Debug)]
struct EdgeMetrics {
    registry: Arc<MetricsRegistry>,
    /// Shard-queue wait per request line, ns (0 for direct-mode,
    /// control-plane and rejected requests; a fan-out reports its
    /// slowest slice).
    queue_wait: Arc<Histogram>,
    /// Dispatch-to-response span per request line, ns (includes queue
    /// wait and engine solve time).
    solve: Arc<Histogram>,
    /// Response encode + socket write span per connection-served line,
    /// ns.
    encode_write: Arc<Histogram>,
}

impl EdgeMetrics {
    fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        Self {
            queue_wait: registry.histogram("serve_request_queue_wait_ns"),
            solve: registry.histogram("serve_request_solve_ns"),
            encode_write: registry.histogram("serve_encode_write_ns"),
            registry,
        }
    }
}

/// Edge-level counters, shared by every connection worker.
#[derive(Debug, Default)]
struct EdgeCounters {
    requests: AtomicU64,
    connections: AtomicU64,
    rejected: AtomicU64,
    active: AtomicUsize,
    stop: AtomicBool,
    draining: AtomicBool,
    panics: AtomicU64,
    respawns: AtomicU64,
}

/// Direct mode's supervised engine slot: the shared state (swapped on
/// respawn after a caught panic) plus the recipe that rebuilds it.
#[derive(Debug)]
struct DirectState {
    slot: Mutex<Arc<ServeState>>,
    template: EngineTemplate,
}

impl DirectState {
    /// The live state (post-respawn reads see the replacement).
    fn state(&self) -> Arc<ServeState> {
        Arc::clone(
            &self
                .slot
                .lock()
                .expect("direct slot lock is never poisoned"),
        )
    }

    fn respawn(&self, fresh: Arc<ServeState>) {
        *self
            .slot
            .lock()
            .expect("direct slot lock is never poisoned") = fresh;
    }
}

/// The request back end behind the connection workers.
#[derive(Debug)]
enum Backend {
    /// One shared engine state (every worker solves in-place). Boxed:
    /// the respawn template inside is much larger than the pool handle.
    Direct(Box<DirectState>),
    /// N private engines behind bounded queues.
    Sharded(ShardPool),
}

/// Everything a connection worker needs: the back end, the edge
/// counters, and the hardening knobs.
#[derive(Debug)]
struct Shared {
    backend: Backend,
    edge: EdgeCounters,
    metrics: EdgeMetrics,
    max_conns: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_line_bytes: usize,
    drain_deadline: Duration,
    log_slow: Option<Duration>,
    faults: Arc<FaultInjector>,
}

/// Per-connection counters (single-threaded: one worker per
/// connection), rendered into that connection's `stats` responses.
#[derive(Debug, Default, Clone, Copy)]
struct ConnCounters {
    requests: u64,
    errors: u64,
}

/// What the connection loop must do after writing one response.
enum PostAction {
    /// Keep serving.
    None,
    /// `shutdown`: stop the whole server now.
    Stop,
    /// `drain`: start the drain watcher with this deadline.
    Drain(Duration),
}

/// One handled request line: the rendered response, the follow-up
/// action, whether the response is fault-eligible (the drop fault
/// only cuts non-control responses), and the trace spans the
/// slow-request log reports.
struct HandledLine {
    rendered: Json,
    action: PostAction,
    fault_eligible: bool,
    /// The wire `cmd` ("invalid" for lines that did not parse).
    cmd: &'static str,
    /// The request id, echoed in the slow-request log.
    id: Json,
    /// Measured shard-queue wait, ns (0 in direct mode).
    queue_wait_ns: u64,
    /// Dispatch-to-response span, ns.
    solve_ns: u64,
}

impl Shared {
    fn stopping(&self) -> bool {
        if self.edge.stop.load(Ordering::SeqCst) {
            return true;
        }
        match &self.backend {
            Backend::Direct(direct) => direct.state().stopping(),
            Backend::Sharded(_) => false,
        }
    }

    fn request_stop(&self) {
        self.edge.stop.store(true, Ordering::SeqCst);
        if let Backend::Direct(direct) = &self.backend {
            direct.state().request_stop();
        }
    }

    /// `true` once a `drain` was accepted: no new connections or work.
    fn draining(&self) -> bool {
        self.edge.draining.load(Ordering::SeqCst)
    }

    /// Requests seen at the edge (sharded mode counts here; direct mode
    /// counts in the shared state).
    fn requests_total(&self) -> u64 {
        match &self.backend {
            Backend::Direct(direct) => direct.state().requests(),
            Backend::Sharded(_) => self.edge.requests.load(Ordering::Relaxed),
        }
    }

    fn connections_total(&self) -> u64 {
        match &self.backend {
            Backend::Direct(direct) => direct.state().connections(),
            Backend::Sharded(_) => self.edge.connections.load(Ordering::Relaxed),
        }
    }

    /// Every live engine state: one in direct mode, one per shard
    /// otherwise (by value — a respawn swaps states out underneath).
    fn live_states(&self) -> Vec<Arc<ServeState>> {
        match &self.backend {
            Backend::Direct(direct) => vec![direct.state()],
            Backend::Sharded(pool) => (0..pool.shards()).map(|i| pool.shard_state(i)).collect(),
        }
    }

    /// Server-wide supervision tallies: `(panics, respawns)`.
    fn supervision_totals(&self) -> (u64, u64) {
        match &self.backend {
            Backend::Direct(_) => (
                self.edge.panics.load(Ordering::Relaxed),
                self.edge.respawns.load(Ordering::Relaxed),
            ),
            Backend::Sharded(pool) => pool.supervision_totals(),
        }
    }

    /// Handles one request line at the edge: parse, route (directly or
    /// through the shard pool, intercepting control-plane commands and
    /// drain-mode rejections), augment `stats` with the edge/connection
    /// view, render.
    fn handle_line(&self, line: &str, conn: &mut ConnCounters) -> HandledLine {
        conn.requests += 1;
        let (id, parsed) = match &self.backend {
            Backend::Direct(direct) => {
                direct.state().count_request();
                parse_line(line)
            }
            Backend::Sharded(_) => {
                self.edge.requests.fetch_add(1, Ordering::Relaxed);
                parse_line(line)
            }
        };
        let cmd = match &parsed {
            Ok(request) => request.cmd(),
            Err(_) => "invalid",
        };
        let mut queue_wait_ns = 0u64;
        let mut solve_ns = 0u64;
        // Every counted line observes the queue-wait and solve
        // histograms exactly once, so their counts always equal the
        // `stats` request counter. Two lines bend the default
        // post-dispatch observation to keep that exact: `metrics`
        // observes itself *before* snapshotting (its own increment is
        // in the counter it reports), and `reset_stats` is never
        // observed (its increment is zeroed during handling).
        let mut observed = false;
        let (mut response, action, fault_eligible) = match parsed {
            // A draining server still answers the control plane (an
            // operator must be able to watch the drain) but refuses new
            // work with the typed, non-retryable shutting_down error.
            Ok(request) if self.draining() && !request.is_control() => (
                Response::Error {
                    code: ErrorCode::ShuttingDown,
                    error: "the server is draining; no new work is accepted".to_string(),
                },
                PostAction::None,
                false,
            ),
            // Drain is answered at the edge in both modes — the drain
            // machinery (connection gate + stop watcher) lives here, not
            // in the engine states.
            Ok(Request::Drain { deadline_ms }) => {
                let deadline = deadline_ms
                    .map(Duration::from_millis)
                    .unwrap_or(self.drain_deadline);
                (
                    Response::Draining {
                        deadline_ms: deadline.as_millis() as u64,
                    },
                    PostAction::Drain(deadline),
                    false,
                )
            }
            // Metrics is answered at the edge in both modes: the edge's
            // request-tracing registry merged with every live engine's
            // stage/cache registry.
            Ok(Request::Metrics) => {
                self.metrics.queue_wait.observe(0);
                self.metrics.solve.observe(0);
                observed = true;
                let mut snapshot = self.metrics.registry.snapshot();
                match &self.backend {
                    Backend::Direct(direct) => {
                        snapshot.merge(&direct.state().engine().metrics_registry().snapshot());
                    }
                    Backend::Sharded(pool) => snapshot.merge(&pool.metrics_snapshot()),
                }
                (Response::Metrics { snapshot }, PostAction::None, false)
            }
            Ok(request) => {
                let action = if matches!(request, Request::Shutdown) {
                    PostAction::Stop
                } else {
                    PostAction::None
                };
                let fault_eligible = !request.is_control();
                let reset = matches!(request, Request::ResetStats);
                let t_solve = Instant::now();
                let response = match &self.backend {
                    Backend::Direct(direct) => self.handle_direct(direct, &request),
                    Backend::Sharded(pool) => {
                        let (response, wait_ns) = self.handle_sharded(pool, request);
                        queue_wait_ns = wait_ns;
                        response
                    }
                };
                solve_ns = u64::try_from(t_solve.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if reset {
                    // Pre-reset values are already rendered into the
                    // response; the post-reset edge reads as zero in
                    // both modes — the request-tracing histograms
                    // included.
                    self.edge.rejected.store(0, Ordering::Relaxed);
                    self.edge.panics.store(0, Ordering::Relaxed);
                    self.edge.respawns.store(0, Ordering::Relaxed);
                    self.metrics.registry.reset();
                    observed = true;
                }
                (response, action, fault_eligible)
            }
            Err(e) => (
                Response::Error {
                    code: e.code,
                    error: e.reason,
                },
                PostAction::None,
                false,
            ),
        };
        if !observed {
            self.metrics.queue_wait.observe(queue_wait_ns);
            self.metrics.solve.observe(solve_ns);
        }
        self.augment_stats(&mut response, conn);
        if response.is_error() {
            conn.errors += 1;
        }
        HandledLine {
            rendered: response.render(&id),
            action,
            fault_eligible,
            cmd,
            id,
            queue_wait_ns,
            solve_ns,
        }
    }

    /// Direct-mode dispatch under supervision: a caught panic answers
    /// with a typed `internal` error and the shared state respawns from
    /// its recipe (cold caches, counters carried over).
    fn handle_direct(&self, direct: &DirectState, request: &Request) -> Response {
        let state = direct.state();
        match supervised_handle(&state, request, &self.faults) {
            Ok(response) => response,
            Err(panic_msg) => {
                self.edge.panics.fetch_add(1, Ordering::Relaxed);
                direct.respawn(direct.template.respawn_state(&state));
                self.edge.respawns.fetch_add(1, Ordering::Relaxed);
                internal_error(request.cmd(), &panic_msg)
            }
        }
    }

    /// Sharded routing: control-plane commands are answered at the
    /// front (the pool never sees them); everything else dispatches by
    /// cache key. Returns the response and the measured shard-queue
    /// wait, ns (0 for control-plane answers).
    fn handle_sharded(&self, pool: &ShardPool, request: Request) -> (Response, u64) {
        match request {
            // Shard 0's state carries the server info; answering from
            // it directly keeps hello off the queues.
            Request::Hello => (pool.shard_state(0).handle_request(&Request::Hello), 0),
            Request::Stats => (self.sharded_stats(pool, false), 0),
            Request::ResetStats => {
                let response = self.sharded_stats(pool, true);
                pool.reset_stats();
                self.edge.requests.store(0, Ordering::Relaxed);
                self.edge.connections.store(0, Ordering::Relaxed);
                self.edge.rejected.store(0, Ordering::Relaxed);
                (response, 0)
            }
            Request::Shutdown => (Response::Shutdown, 0),
            other => pool.dispatch_traced(other),
        }
    }

    /// The sharded `stats` rendering: the direct mode's counter fields
    /// aggregated over every shard, plus a per-shard `shards` array
    /// (requests, errors, queue depth + high-water, hit rate).
    fn sharded_stats(&self, pool: &ShardPool, reset: bool) -> Response {
        let (hits, misses, promotions, evictions, nets_solved, trees_solved) = pool.engine_totals();
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let state0 = pool.shard_state(0);
        let engine = state0.engine();
        let shards = pool.snapshots().iter().map(render_shard_snapshot).collect();
        Response::Stats {
            fields: vec![
                ("requests", Json::from(self.requests_total())),
                ("connections", Json::from(self.connections_total())),
                ("nets_solved", Json::from(nets_solved)),
                ("trees_solved", Json::from(trees_solved)),
                ("hits", Json::from(hits)),
                ("misses", Json::from(misses)),
                ("hit_rate", Json::Num(hit_rate)),
                ("promotions", Json::from(promotions)),
                ("evictions", Json::from(evictions)),
                ("cache_cap", Json::from(engine.cache_cap())),
                ("value_cache_cap", Json::from(engine.value_cache_cap())),
                ("shards", Json::Arr(shards)),
            ],
            reset,
        }
    }

    /// Appends the edge view to a `stats`/`reset_stats` response: the
    /// rejected-connection counter, the supervision tallies, and this
    /// connection's own counters.
    fn augment_stats(&self, response: &mut Response, conn: &ConnCounters) {
        if let Response::Stats { fields, .. } = response {
            fields.push((
                "rejected_conns",
                Json::from(self.edge.rejected.load(Ordering::Relaxed)),
            ));
            let (panics, respawns) = self.supervision_totals();
            fields.push(("panics", Json::from(panics)));
            fields.push(("respawns", Json::from(respawns)));
            fields.push((
                "connection",
                Json::obj([
                    ("requests", Json::from(conn.requests)),
                    ("errors", Json::from(conn.errors)),
                ]),
            ));
        }
    }
}

fn render_shard_snapshot(snapshot: &ShardSnapshot) -> Json {
    Json::obj([
        ("requests", Json::from(snapshot.requests)),
        ("errors", Json::from(snapshot.errors)),
        ("queue_depth", Json::from(snapshot.queue_depth)),
        ("queue_high_water", Json::from(snapshot.queue_high_water)),
        ("hit_rate", Json::Num(snapshot.hit_rate)),
        ("panics", Json::from(snapshot.panics)),
        ("respawns", Json::from(snapshot.respawns)),
    ])
}

/// A running server: join it, read its address, or stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The first *live* engine state (the only one in direct mode;
    /// shard 0 in sharded mode) — mainly for tests and the in-process
    /// benchmark harness. By value, because a post-panic respawn swaps
    /// the state out. Sharded aggregates live on
    /// [`ServerHandle::requests_total`] /
    /// [`ServerHandle::engine_totals`].
    pub fn state(&self) -> Arc<ServeState> {
        self.shared.live_states().remove(0)
    }

    /// Every live engine state: one in direct mode, one per shard
    /// otherwise.
    pub fn states(&self) -> Vec<Arc<ServeState>> {
        self.shared.live_states()
    }

    /// Number of engine shards (0 = direct mode).
    pub fn shards(&self) -> usize {
        match &self.shared.backend {
            Backend::Direct(_) => 0,
            Backend::Sharded(pool) => pool.shards(),
        }
    }

    /// Requests handled across the whole server.
    pub fn requests_total(&self) -> u64 {
        self.shared.requests_total()
    }

    /// Connections accepted across the whole server.
    pub fn connections_total(&self) -> u64 {
        self.shared.connections_total()
    }

    /// Connections rejected over the `max_conns` limit.
    pub fn rejected_conns(&self) -> u64 {
        self.shared.edge.rejected.load(Ordering::Relaxed)
    }

    /// Panics caught by supervised handlers, server-wide.
    pub fn panics_total(&self) -> u64 {
        self.shared.supervision_totals().0
    }

    /// Engine respawns after caught panics, server-wide.
    pub fn respawns_total(&self) -> u64 {
        self.shared.supervision_totals().1
    }

    /// `true` once a `drain` was accepted.
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }

    /// The server's fault injector (chaos tests disarm it mid-run and
    /// reconcile its tallies against `stats`).
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.shared.faults
    }

    /// Aggregate engine counters over every live state: `(hits, misses,
    /// promotions, evictions, nets_solved, trees_solved)`.
    pub fn engine_totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        engine_totals_of(&self.shared.live_states())
    }

    /// Aggregate cache hit rate over every live state.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses, ..) = self.engine_totals();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Per-shard monitoring snapshots (empty in direct mode).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        match &self.shared.backend {
            Backend::Direct(_) => Vec::new(),
            Backend::Sharded(pool) => pool.snapshots(),
        }
    }

    /// A cheap counter handle that outlives [`ServerHandle::join`] —
    /// the CLI reads its shutdown summary through one of these.
    pub fn monitor(&self) -> ServerMonitor {
        ServerMonitor {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the server stops (a client sent `shutdown`), then
    /// joins every connection worker and — in sharded mode — drains and
    /// joins the shard workers.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Backend::Sharded(pool) = &self.shared.backend {
            pool.shutdown();
        }
    }

    /// Stops the server from the hosting process and joins the workers.
    pub fn shutdown(self) {
        self.shared.request_stop();
        self.join();
    }
}

/// Counter access that survives [`ServerHandle::join`] /
/// [`ServerHandle::shutdown`] (both consume the handle): an Arc clone
/// of the shared edge.
#[derive(Debug, Clone)]
pub struct ServerMonitor {
    shared: Arc<Shared>,
}

impl ServerMonitor {
    /// Requests handled across the whole server.
    pub fn requests_total(&self) -> u64 {
        self.shared.requests_total()
    }

    /// Connections accepted across the whole server.
    pub fn connections_total(&self) -> u64 {
        self.shared.connections_total()
    }

    /// Connections rejected over the `max_conns` limit.
    pub fn rejected_conns(&self) -> u64 {
        self.shared.edge.rejected.load(Ordering::Relaxed)
    }

    /// Panics caught by supervised handlers, server-wide.
    pub fn panics_total(&self) -> u64 {
        self.shared.supervision_totals().0
    }

    /// Engine respawns after caught panics, server-wide.
    pub fn respawns_total(&self) -> u64 {
        self.shared.supervision_totals().1
    }

    /// `true` once a `drain` was accepted.
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }

    /// Aggregate engine counters over every live state: `(hits, misses,
    /// promotions, evictions, nets_solved, trees_solved)`.
    pub fn engine_totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        engine_totals_of(&self.shared.live_states())
    }

    /// Aggregate cache hit rate over every live state.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses, ..) = self.engine_totals();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Number of engine shards (0 = direct mode).
    pub fn shards(&self) -> usize {
        match &self.shared.backend {
            Backend::Direct(_) => 0,
            Backend::Sharded(pool) => pool.shards(),
        }
    }
}

/// Aggregate engine counters over `states`: `(hits, misses, promotions,
/// evictions, nets_solved, trees_solved)`.
fn engine_totals_of(states: &[Arc<ServeState>]) -> (u64, u64, u64, u64, u64, u64) {
    let mut totals = (0, 0, 0, 0, 0, 0);
    for state in states {
        let stats = state.engine().stats();
        totals.0 += stats.hits();
        totals.1 += stats.misses();
        totals.2 += stats.promotions;
        totals.3 += stats.evictions;
        totals.4 += stats.nets_solved;
        totals.5 += stats.trees_solved;
    }
    totals
}

/// Binds the listener and spawns the connection workers over the
/// configured back end: a fresh shared [`ServeState`] wrapping `engine`
/// (direct mode), or a [`ShardPool`] seeded from it
/// ([`ServeConfig::shards`] > 0 — shard 0 owns `engine`, the others get
/// private engines with the same technology, configuration and cache
/// caps).
///
/// The engine's cache bounds and scratch pool are set from `config`
/// before the first worker starts.
///
/// # Errors
///
/// Returns the bind / clone / spawn error verbatim.
///
/// # Examples
///
/// ```
/// use rip_core::Engine;
/// use rip_serve::{Client, Json, ServeConfig, start_server};
/// use rip_tech::Technology;
///
/// let config = ServeConfig { workers: 2, shards: 2, ..ServeConfig::default() };
/// let server = start_server(Engine::paper(Technology::generic_180nm()), &config).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let response = client.request_value(&rip_serve::parse_json(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
/// assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
/// client.send_line(r#"{"cmd":"shutdown"}"#).unwrap();
/// server.join();
/// ```
pub fn start_server(engine: Engine, config: &ServeConfig) -> io::Result<ServerHandle> {
    engine.set_cache_cap(config.cache_cap);
    engine.set_value_cache_cap(config.value_cache_cap);
    let info = ServerInfo {
        shards: config.shards,
        workers: config.workers.max(1),
        max_conns: config.max_conns,
        queue_cap: if config.shards > 0 {
            config.queue_cap.max(1)
        } else {
            0
        },
    };
    let faults = Arc::new(FaultInjector::new(config.faults));
    let backend = if config.shards > 0 {
        let pool = ShardPool::start_with_faults(
            engine,
            config.shards,
            config.queue_cap,
            Arc::clone(&faults),
        );
        for i in 0..pool.shards() {
            pool.shard_state(i).set_server_info(info);
        }
        Backend::Sharded(pool)
    } else {
        engine.set_scratch_cap(config.workers.max(1));
        // Capture the respawn recipe before the state consumes the
        // engine.
        let template = EngineTemplate::of(&engine, config.workers.max(1));
        let state = Arc::new(ServeState::new(engine));
        state.set_server_info(info);
        Backend::Direct(Box::new(DirectState {
            slot: Mutex::new(state),
            template,
        }))
    };
    let shared = Arc::new(Shared {
        backend,
        edge: EdgeCounters::default(),
        metrics: EdgeMetrics::new(),
        max_conns: config.max_conns,
        read_timeout: (config.read_timeout_ms > 0)
            .then(|| Duration::from_millis(config.read_timeout_ms)),
        write_timeout: (config.write_timeout_ms > 0)
            .then(|| Duration::from_millis(config.write_timeout_ms)),
        max_line_bytes: config.max_line_bytes.max(1),
        drain_deadline: Duration::from_secs(config.drain_deadline_secs),
        log_slow: (config.log_slow_ms > 0).then(|| Duration::from_millis(config.log_slow_ms)),
        faults,
    });
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let listener = listener.try_clone()?;
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("rip-serve-{i}"))
                .spawn(move || worker_loop(&listener, &shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        workers,
    })
}

fn worker_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Draining outranks busy: a late dial learns the server
                // is going away, not that it should retry.
                if shared.draining() {
                    let _ = reject_with(
                        stream,
                        ErrorCode::ShuttingDown,
                        "server is draining; no new connections are accepted".to_string(),
                    );
                    continue;
                }
                if shared.max_conns > 0
                    && shared.edge.active.load(Ordering::SeqCst) >= shared.max_conns
                {
                    shared.edge.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = reject_with(
                        stream,
                        ErrorCode::Busy,
                        format!(
                            "server is at its connection limit ({}); retry later",
                            shared.max_conns
                        ),
                    );
                    continue;
                }
                shared.edge.active.fetch_add(1, Ordering::SeqCst);
                match &shared.backend {
                    Backend::Direct(direct) => direct.state().count_connection(),
                    Backend::Sharded(_) => {
                        shared.edge.connections.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // A broken connection only ends that connection; the
                // worker goes back to accepting.
                let _ = serve_connection(stream, shared);
                shared.edge.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(e) if polling_retry(&e) => std::thread::sleep(POLL_INTERVAL),
            // Transient accept errors (e.g. aborted handshakes) —
            // back off briefly and keep serving.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// `true` for the error kinds a non-blocking / timed-out read returns
/// when no data is available yet (platform-dependent: `WouldBlock` on
/// Unix, `TimedOut` on Windows).
fn polling_retry(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Turns away a connection with one typed error line and a clean close,
/// so "full" and "draining" are both distinguishable from "down".
fn reject_with(mut stream: TcpStream, code: ErrorCode, error: String) -> io::Result<()> {
    let response = Response::Error { code, error };
    let mut line = response.render(&Json::Null).to_string();
    line.push('\n');
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Starts the drain watcher (idempotent): from now on new connections
/// and new work are refused; once no connection is active — or the
/// deadline passes — the server stops.
fn begin_drain(shared: &Arc<Shared>, deadline: Duration) {
    if shared.edge.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    let watcher = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("rip-serve-drain".to_string())
        .spawn(move || {
            let start = Instant::now();
            while watcher.edge.active.load(Ordering::SeqCst) > 0 && start.elapsed() < deadline {
                std::thread::sleep(POLL_INTERVAL);
            }
            watcher.request_stop();
        });
    if spawned.is_err() {
        // No watcher thread means nobody would ever flip the stop flag:
        // degrade to an immediate stop rather than hanging forever.
        shared.request_stop();
    }
}

/// Serves one connection until the client disconnects, idles past the
/// read timeout, or the server stops: reads newline-delimited requests,
/// writes one response line each.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Bounded reads so a worker blocked on an idle connection still
    // notices a shutdown within one interval.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(shared.write_timeout)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut conn = ConnCounters::default();
    let mut last_data = Instant::now();
    loop {
        // Drain every complete line before reading more.
        while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=newline).collect();
            let line = String::from_utf8_lossy(&line[..newline]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let t_line = Instant::now();
            let handled = shared.handle_line(line, &mut conn);
            let t_encode = Instant::now();
            let mut rendered = handled.rendered.to_string();
            rendered.push('\n');
            // The injected drop fault cuts the connection strictly
            // inside an eligible response line — the client sees a
            // truncated (unparseable) reply and an EOF, never a line
            // that parses but lies.
            if handled.fault_eligible {
                if let Some(cut) = shared.faults.drop_response(rendered.len()) {
                    writer.write_all(&rendered.as_bytes()[..cut])?;
                    writer.flush()?;
                    return Ok(());
                }
            }
            writer.write_all(rendered.as_bytes())?;
            writer.flush()?;
            shared.metrics.encode_write.observe_since(t_encode);
            if let Some(limit) = shared.log_slow {
                let total = t_line.elapsed();
                if total >= limit {
                    eprintln!(
                        "[rip-serve] slow request id={} cmd={} total_ms={:.3} \
                         queue_wait_ms={:.3} solve_ms={:.3}",
                        handled.id,
                        handled.cmd,
                        total.as_secs_f64() * 1e3,
                        handled.queue_wait_ns as f64 / 1e6,
                        handled.solve_ns as f64 / 1e6,
                    );
                }
            }
            match handled.action {
                PostAction::None => {}
                PostAction::Stop => {
                    shared.request_stop();
                    return Ok(());
                }
                // Keep serving this connection's already-buffered lines
                // (a pipelined drain+solve gets both answers); the
                // draining gate rejects the non-control ones.
                PostAction::Drain(deadline) => begin_drain(shared, deadline),
            }
        }
        if shared.stopping() {
            return Ok(());
        }
        // A draining server closes connections once their buffered work
        // is answered; the drain watcher is waiting on `active` to
        // reach zero.
        if shared.draining() && pending.is_empty() {
            return Ok(());
        }
        // The JSON layer bounds nesting depth against hostile input; the
        // transport must bound line length for the same threat model, or
        // a client that never sends a newline grows server memory
        // without limit.
        if pending.len() > shared.max_line_bytes {
            return close_discarding_input(
                &mut writer,
                &mut reader,
                ErrorCode::BadRequest,
                format!("request line exceeds {} bytes", shared.max_line_bytes),
            ); // drop the connection; the stream is unframed now
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                last_data = Instant::now();
            }
            Err(e) if polling_retry(&e) => {
                if let Some(limit) = shared.read_timeout {
                    if last_data.elapsed() > limit && pending.is_empty() {
                        return close_with_error(
                            &mut writer,
                            ErrorCode::Timeout,
                            format!("connection idle past {} ms", limit.as_millis()),
                        );
                    }
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn close_with_error(writer: &mut TcpStream, code: ErrorCode, error: String) -> io::Result<()> {
    let response = Response::Error { code, error };
    let mut line = response.render(&Json::Null).to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// [`close_with_error`] for a connection that still has unread input
/// (the over-long-line path). Closing a socket with unread data makes
/// the kernel send RST, which destroys the queued error line before the
/// client can read it — the old "silent drop". Instead: write the
/// error, half-close the write side so the client sees a clean FIN
/// after the line, then sink the remaining input (bounded) before
/// letting the socket drop.
fn close_discarding_input(
    writer: &mut TcpStream,
    reader: &mut TcpStream,
    code: ErrorCode,
    error: String,
) -> io::Result<()> {
    let response = Response::Error { code, error };
    let mut line = response.render(&Json::Null).to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()?;
    let _ = writer.shutdown(Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 8192];
    // The reader still has its short poll timeout, so this loop spins
    // cheaply and exits on the client's close (Ok(0)), a hard error, or
    // the deadline.
    while Instant::now() < deadline {
        match reader.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if polling_retry(&e) => {}
            Err(_) => break,
        }
    }
    Ok(())
}
