//! The multi-threaded TCP server: N worker threads share one listener
//! and one [`ServeState`] (and therefore one [`rip_core::Engine`] —
//! candidate grids, `τ_min`, synthesized libraries and scratch pools
//! amortize across every connection the process ever handles).
//!
//! Workers `accept` in non-blocking mode with a short poll interval, so
//! a `shutdown` request (or [`ServerHandle::shutdown`]) drains every
//! worker within one interval without platform-specific listener
//! tricks. Each worker handles one connection at a time — request
//! *handling* is where the parallelism pays, and the load generator
//! opens exactly as many connections as it wants concurrency.

use crate::protocol::ServeState;
use rip_core::Engine;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker sleeps between accept polls, and how long a
/// connection read blocks before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Longest accepted request line. Generous for real workloads (a
/// 1000-net batch request is ~200 KB) while keeping a newline-less
/// client from exhausting server memory.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads (each serving one connection at a time). The
    /// engine's scratch pool is sized to this.
    pub workers: usize,
    /// LRU bound for the engine's geometry caches
    /// ([`Engine::set_cache_cap`]); 0 = unbounded.
    pub cache_cap: usize,
    /// LRU bound for the engine's `τ_min`/library maps
    /// ([`Engine::set_value_cache_cap`]); 0 = unbounded.
    pub value_cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            // A resident service bounds its caches by default; these
            // hold the hot working set of a large design comfortably
            // while keeping memory flat on unbounded request streams.
            cache_cap: 512,
            value_cache_cap: 4096,
        }
    }
}

/// A running server: join it, read its address, or stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (stats, stop flag) — mainly for tests and the
    /// in-process benchmark harness.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Blocks until the server stops (a client sent `shutdown`), then
    /// joins every worker.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Stops the server from the hosting process and joins the workers.
    pub fn shutdown(self) {
        self.state.request_stop();
        self.join();
    }
}

/// Binds the listener and spawns the worker threads over a fresh
/// [`ServeState`] wrapping `engine`.
///
/// The engine's cache bounds and scratch pool are set from `config`
/// before the first worker starts.
///
/// # Errors
///
/// Returns the bind / clone / spawn error verbatim.
///
/// # Examples
///
/// ```
/// use rip_core::Engine;
/// use rip_serve::{Client, Json, ServeConfig, start_server};
/// use rip_tech::Technology;
///
/// let config = ServeConfig { workers: 2, ..ServeConfig::default() };
/// let server = start_server(Engine::paper(Technology::generic_180nm()), &config).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let response = client.request_value(&rip_serve::parse_json(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
/// assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
/// client.send_line(r#"{"cmd":"shutdown"}"#).unwrap();
/// server.join();
/// ```
pub fn start_server(engine: Engine, config: &ServeConfig) -> io::Result<ServerHandle> {
    engine.set_cache_cap(config.cache_cap);
    engine.set_value_cache_cap(config.value_cache_cap);
    engine.set_scratch_cap(config.workers.max(1));
    let state = Arc::new(ServeState::new(engine));
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let listener = listener.try_clone()?;
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("rip-serve-{i}"))
                .spawn(move || worker_loop(&listener, &state))?,
        );
    }
    Ok(ServerHandle {
        addr,
        state,
        workers,
    })
}

fn worker_loop(listener: &TcpListener, state: &Arc<ServeState>) {
    while !state.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                state.count_connection();
                // A broken connection only ends that connection; the
                // worker goes back to accepting.
                let _ = serve_connection(stream, state);
            }
            Err(e) if polling_retry(&e) => std::thread::sleep(POLL_INTERVAL),
            // Transient accept errors (e.g. aborted handshakes) —
            // back off briefly and keep serving.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// `true` for the error kinds a non-blocking / timed-out read returns
/// when no data is available yet (platform-dependent: `WouldBlock` on
/// Unix, `TimedOut` on Windows).
fn polling_retry(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Serves one connection until the client disconnects or the server
/// stops: reads newline-delimited requests, writes one response line
/// each.
fn serve_connection(stream: TcpStream, state: &Arc<ServeState>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Bounded reads so a worker blocked on an idle connection still
    // notices a shutdown within one interval.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        // Drain every complete line before reading more.
        while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=newline).collect();
            let line = String::from_utf8_lossy(&line[..newline]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (response, stop) = state.handle_line(line);
            let mut rendered = response.to_string();
            rendered.push('\n');
            writer.write_all(rendered.as_bytes())?;
            writer.flush()?;
            if stop {
                state.request_stop();
                return Ok(());
            }
        }
        if state.stopping() {
            return Ok(());
        }
        // The JSON layer bounds nesting depth against hostile input; the
        // transport must bound line length for the same threat model, or
        // a client that never sends a newline grows server memory
        // without limit.
        if pending.len() > MAX_LINE_BYTES {
            let refusal = format!(
                "{}\n",
                crate::json::Json::obj([
                    ("id", crate::json::Json::Null),
                    ("ok", crate::json::Json::Bool(false)),
                    (
                        "error",
                        crate::json::Json::Str(format!(
                            "request line exceeds {MAX_LINE_BYTES} bytes"
                        )),
                    ),
                ])
            );
            writer.write_all(refusal.as_bytes())?;
            writer.flush()?;
            return Ok(()); // drop the connection; the stream is unframed now
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if polling_retry(&e) => continue,
            Err(e) => return Err(e),
        }
    }
}
