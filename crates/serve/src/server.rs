//! The hardened TCP edge: N connection workers share one listener and
//! feed either a single shared [`ServeState`] (direct mode) or a
//! [`ShardPool`] of private engines (sharded mode,
//! [`ServeConfig::shards`] > 0).
//!
//! Workers `accept` in non-blocking mode with a short poll interval, so
//! a `shutdown` request (or [`ServerHandle::shutdown`]) drains every
//! worker within one interval without platform-specific listener
//! tricks. Each worker handles one connection at a time — request
//! *handling* is where the parallelism pays, and the load generator
//! opens exactly as many connections as it wants concurrency.
//!
//! Edge hardening, all opt-in via [`ServeConfig`]:
//!
//! * `addr` accepts non-loopback binds (the CLI's `--bind`);
//! * `max_conns` rejects over-limit connections with a typed `busy`
//!   error line instead of a dropped socket, so clients can tell "down"
//!   from "full" (note the rejection is only observable while a worker
//!   is free to deliver it — size `workers` above `max_conns`);
//! * `read_timeout_ms` closes idle connections with a typed `timeout`
//!   error; `write_timeout_ms` bounds how long a stalled client can
//!   pin a worker mid-response;
//! * in sharded mode, per-shard queue overflow surfaces as a typed
//!   `backpressure` error ([`crate::shard`]).
//!
//! `stats` responses served over a connection additionally carry a
//! `rejected_conns` counter, a per-connection `connection` object, and
//! (sharded) a per-shard `shards` array — none of which exist in the
//! bare [`ServeState`] rendering, which is why the load generator
//! treats `stats` as non-deterministic.

use crate::json::Json;
use crate::protocol::{parse_line, ErrorCode, Request, Response, ServeState, ServerInfo};
use crate::shard::{ShardPool, ShardSnapshot};
use rip_core::Engine;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker sleeps between accept polls, and how long a
/// connection read blocks before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Longest accepted request line. Generous for real workloads (a
/// 1000-net batch request is ~200 KB) while keeping a newline-less
/// client from exhausting server memory.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`]). Non-loopback interfaces
    /// are accepted — pair them with `max_conns` and the timeouts.
    pub addr: String,
    /// Connection worker threads (each serving one connection at a
    /// time). In direct mode the engine's scratch pool is sized to
    /// this.
    pub workers: usize,
    /// LRU bound for each engine's geometry caches
    /// ([`Engine::set_cache_cap`]); 0 = unbounded.
    pub cache_cap: usize,
    /// LRU bound for each engine's `τ_min`/library maps
    /// ([`Engine::set_value_cache_cap`]); 0 = unbounded.
    pub value_cache_cap: usize,
    /// Engine shards; 0 = direct mode (one shared engine). With N > 0,
    /// N private engines sit behind bounded queues and requests route
    /// by cache key ([`crate::shard`]).
    pub shards: usize,
    /// Concurrent-connection cap; over-limit connections get a typed
    /// `busy` error and a clean close. 0 = unlimited.
    pub max_conns: usize,
    /// Bounded per-shard queue depth (sharded mode); overflow surfaces
    /// as typed `backpressure` errors.
    pub queue_cap: usize,
    /// Idle-connection read timeout, ms; an idle connection is closed
    /// with a typed `timeout` error. 0 = never (loadgen and tests keep
    /// idle connections open deliberately).
    pub read_timeout_ms: u64,
    /// Per-write timeout, ms, bounding how long a stalled client can
    /// pin a worker mid-response. 0 = never.
    pub write_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            // A resident service bounds its caches by default; these
            // hold the hot working set of a large design comfortably
            // while keeping memory flat on unbounded request streams.
            cache_cap: 512,
            value_cache_cap: 4096,
            shards: 0,
            max_conns: 0,
            queue_cap: 64,
            read_timeout_ms: 0,
            write_timeout_ms: 30_000,
        }
    }
}

/// Edge-level counters, shared by every connection worker.
#[derive(Debug, Default)]
struct EdgeCounters {
    requests: AtomicU64,
    connections: AtomicU64,
    rejected: AtomicU64,
    active: AtomicUsize,
    stop: AtomicBool,
}

/// The request back end behind the connection workers.
#[derive(Debug)]
enum Backend {
    /// One shared engine state (every worker solves in-place).
    Direct(Arc<ServeState>),
    /// N private engines behind bounded queues.
    Sharded(ShardPool),
}

/// Everything a connection worker needs: the back end, the edge
/// counters, and the hardening knobs.
#[derive(Debug)]
struct Shared {
    backend: Backend,
    edge: EdgeCounters,
    max_conns: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

/// Per-connection counters (single-threaded: one worker per
/// connection), rendered into that connection's `stats` responses.
#[derive(Debug, Default, Clone, Copy)]
struct ConnCounters {
    requests: u64,
    errors: u64,
}

impl Shared {
    fn stopping(&self) -> bool {
        if self.edge.stop.load(Ordering::SeqCst) {
            return true;
        }
        match &self.backend {
            Backend::Direct(state) => state.stopping(),
            Backend::Sharded(_) => false,
        }
    }

    fn request_stop(&self) {
        self.edge.stop.store(true, Ordering::SeqCst);
        if let Backend::Direct(state) = &self.backend {
            state.request_stop();
        }
    }

    /// Requests seen at the edge (sharded mode counts here; direct mode
    /// counts in the shared state).
    fn requests_total(&self) -> u64 {
        match &self.backend {
            Backend::Direct(state) => state.requests(),
            Backend::Sharded(_) => self.edge.requests.load(Ordering::Relaxed),
        }
    }

    fn connections_total(&self) -> u64 {
        match &self.backend {
            Backend::Direct(state) => state.connections(),
            Backend::Sharded(_) => self.edge.connections.load(Ordering::Relaxed),
        }
    }

    /// Handles one request line at the edge: parse, route (directly or
    /// through the shard pool, intercepting control-plane commands),
    /// augment `stats` with the edge/connection view, render.
    fn handle_line(&self, line: &str, conn: &mut ConnCounters) -> (Json, bool) {
        conn.requests += 1;
        let (id, parsed) = match &self.backend {
            Backend::Direct(state) => {
                state.count_request();
                parse_line(line)
            }
            Backend::Sharded(_) => {
                self.edge.requests.fetch_add(1, Ordering::Relaxed);
                parse_line(line)
            }
        };
        let (mut response, stop) = match parsed {
            Ok(request) => {
                let stop = matches!(request, Request::Shutdown);
                let response = match &self.backend {
                    Backend::Direct(state) => state.handle_request(&request),
                    Backend::Sharded(pool) => self.handle_sharded(pool, request),
                };
                (response, stop)
            }
            Err(e) => (
                Response::Error {
                    code: e.code,
                    error: e.reason,
                },
                false,
            ),
        };
        self.augment_stats(&mut response, conn);
        if response.is_error() {
            conn.errors += 1;
        }
        (response.render(&id), stop)
    }

    /// Sharded routing: control-plane commands are answered at the
    /// front (the pool never sees them); everything else dispatches by
    /// cache key.
    fn handle_sharded(&self, pool: &ShardPool, request: Request) -> Response {
        match request {
            // Shard 0's state carries the server info; answering from
            // it directly keeps hello off the queues.
            Request::Hello => pool.shard_state(0).handle_request(&Request::Hello),
            Request::Stats => self.sharded_stats(pool, false),
            Request::ResetStats => {
                let response = self.sharded_stats(pool, true);
                pool.reset_stats();
                self.edge.requests.store(0, Ordering::Relaxed);
                self.edge.connections.store(0, Ordering::Relaxed);
                self.edge.rejected.store(0, Ordering::Relaxed);
                response
            }
            Request::Shutdown => Response::Shutdown,
            other => pool.dispatch(other),
        }
    }

    /// The sharded `stats` rendering: the direct mode's counter fields
    /// aggregated over every shard, plus a per-shard `shards` array
    /// (requests, errors, queue depth + high-water, hit rate).
    fn sharded_stats(&self, pool: &ShardPool, reset: bool) -> Response {
        let (hits, misses, promotions, evictions, nets_solved, trees_solved) = pool.engine_totals();
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let engine = pool.shard_state(0).engine();
        let shards = pool.snapshots().iter().map(render_shard_snapshot).collect();
        Response::Stats {
            fields: vec![
                ("requests", Json::from(self.requests_total())),
                ("connections", Json::from(self.connections_total())),
                ("nets_solved", Json::from(nets_solved)),
                ("trees_solved", Json::from(trees_solved)),
                ("hits", Json::from(hits)),
                ("misses", Json::from(misses)),
                ("hit_rate", Json::Num(hit_rate)),
                ("promotions", Json::from(promotions)),
                ("evictions", Json::from(evictions)),
                ("cache_cap", Json::from(engine.cache_cap())),
                ("value_cache_cap", Json::from(engine.value_cache_cap())),
                ("shards", Json::Arr(shards)),
            ],
            reset,
        }
    }

    /// Appends the edge view to a `stats`/`reset_stats` response: the
    /// rejected-connection counter and this connection's own counters.
    fn augment_stats(&self, response: &mut Response, conn: &ConnCounters) {
        if let Response::Stats { fields, .. } = response {
            fields.push((
                "rejected_conns",
                Json::from(self.edge.rejected.load(Ordering::Relaxed)),
            ));
            fields.push((
                "connection",
                Json::obj([
                    ("requests", Json::from(conn.requests)),
                    ("errors", Json::from(conn.errors)),
                ]),
            ));
        }
    }
}

fn render_shard_snapshot(snapshot: &ShardSnapshot) -> Json {
    Json::obj([
        ("requests", Json::from(snapshot.requests)),
        ("errors", Json::from(snapshot.errors)),
        ("queue_depth", Json::from(snapshot.queue_depth)),
        ("queue_high_water", Json::from(snapshot.queue_high_water)),
        ("hit_rate", Json::Num(snapshot.hit_rate)),
    ])
}

/// A running server: join it, read its address, or stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    states: Vec<Arc<ServeState>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The first engine state (the only one in direct mode; shard 0 in
    /// sharded mode) — mainly for tests and the in-process benchmark
    /// harness. Sharded aggregates live on
    /// [`ServerHandle::requests_total`] /
    /// [`ServerHandle::engine_totals`].
    pub fn state(&self) -> &Arc<ServeState> {
        &self.states[0]
    }

    /// Every engine state: one in direct mode, one per shard otherwise.
    pub fn states(&self) -> &[Arc<ServeState>] {
        &self.states
    }

    /// Number of engine shards (0 = direct mode).
    pub fn shards(&self) -> usize {
        match &self.shared.backend {
            Backend::Direct(_) => 0,
            Backend::Sharded(pool) => pool.shards(),
        }
    }

    /// Requests handled across the whole server.
    pub fn requests_total(&self) -> u64 {
        self.shared.requests_total()
    }

    /// Connections accepted across the whole server.
    pub fn connections_total(&self) -> u64 {
        self.shared.connections_total()
    }

    /// Connections rejected over the `max_conns` limit.
    pub fn rejected_conns(&self) -> u64 {
        self.shared.edge.rejected.load(Ordering::Relaxed)
    }

    /// Aggregate engine counters over every state: `(hits, misses,
    /// promotions, evictions, nets_solved, trees_solved)`.
    pub fn engine_totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        let mut totals = (0, 0, 0, 0, 0, 0);
        for state in &self.states {
            let stats = state.engine().stats();
            totals.0 += stats.hits();
            totals.1 += stats.misses();
            totals.2 += stats.promotions;
            totals.3 += stats.evictions;
            totals.4 += stats.nets_solved;
            totals.5 += stats.trees_solved;
        }
        totals
    }

    /// Aggregate cache hit rate over every state.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses, ..) = self.engine_totals();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Per-shard monitoring snapshots (empty in direct mode).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        match &self.shared.backend {
            Backend::Direct(_) => Vec::new(),
            Backend::Sharded(pool) => pool.snapshots(),
        }
    }

    /// A cheap counter handle that outlives [`ServerHandle::join`] —
    /// the CLI reads its shutdown summary through one of these.
    pub fn monitor(&self) -> ServerMonitor {
        ServerMonitor {
            shared: Arc::clone(&self.shared),
            states: self.states.clone(),
        }
    }

    /// Blocks until the server stops (a client sent `shutdown`), then
    /// joins every connection worker and — in sharded mode — drains and
    /// joins the shard workers.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Backend::Sharded(pool) = &self.shared.backend {
            pool.shutdown();
        }
    }

    /// Stops the server from the hosting process and joins the workers.
    pub fn shutdown(self) {
        self.shared.request_stop();
        self.join();
    }
}

/// Counter access that survives [`ServerHandle::join`] /
/// [`ServerHandle::shutdown`] (both consume the handle): Arc clones of
/// the edge counters and every engine state.
#[derive(Debug, Clone)]
pub struct ServerMonitor {
    shared: Arc<Shared>,
    states: Vec<Arc<ServeState>>,
}

impl ServerMonitor {
    /// Requests handled across the whole server.
    pub fn requests_total(&self) -> u64 {
        self.shared.requests_total()
    }

    /// Connections accepted across the whole server.
    pub fn connections_total(&self) -> u64 {
        self.shared.connections_total()
    }

    /// Connections rejected over the `max_conns` limit.
    pub fn rejected_conns(&self) -> u64 {
        self.shared.edge.rejected.load(Ordering::Relaxed)
    }

    /// Aggregate engine counters over every state: `(hits, misses,
    /// promotions, evictions, nets_solved, trees_solved)`.
    pub fn engine_totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        let mut totals = (0, 0, 0, 0, 0, 0);
        for state in &self.states {
            let stats = state.engine().stats();
            totals.0 += stats.hits();
            totals.1 += stats.misses();
            totals.2 += stats.promotions;
            totals.3 += stats.evictions;
            totals.4 += stats.nets_solved;
            totals.5 += stats.trees_solved;
        }
        totals
    }

    /// Aggregate cache hit rate over every state.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses, ..) = self.engine_totals();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Number of engine shards (0 = direct mode).
    pub fn shards(&self) -> usize {
        match &self.shared.backend {
            Backend::Direct(_) => 0,
            Backend::Sharded(pool) => pool.shards(),
        }
    }
}

/// Binds the listener and spawns the connection workers over the
/// configured back end: a fresh shared [`ServeState`] wrapping `engine`
/// (direct mode), or a [`ShardPool`] seeded from it
/// ([`ServeConfig::shards`] > 0 — shard 0 owns `engine`, the others get
/// private engines with the same technology, configuration and cache
/// caps).
///
/// The engine's cache bounds and scratch pool are set from `config`
/// before the first worker starts.
///
/// # Errors
///
/// Returns the bind / clone / spawn error verbatim.
///
/// # Examples
///
/// ```
/// use rip_core::Engine;
/// use rip_serve::{Client, Json, ServeConfig, start_server};
/// use rip_tech::Technology;
///
/// let config = ServeConfig { workers: 2, shards: 2, ..ServeConfig::default() };
/// let server = start_server(Engine::paper(Technology::generic_180nm()), &config).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let response = client.request_value(&rip_serve::parse_json(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
/// assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
/// client.send_line(r#"{"cmd":"shutdown"}"#).unwrap();
/// server.join();
/// ```
pub fn start_server(engine: Engine, config: &ServeConfig) -> io::Result<ServerHandle> {
    engine.set_cache_cap(config.cache_cap);
    engine.set_value_cache_cap(config.value_cache_cap);
    let info = ServerInfo {
        shards: config.shards,
        workers: config.workers.max(1),
        max_conns: config.max_conns,
        queue_cap: if config.shards > 0 {
            config.queue_cap.max(1)
        } else {
            0
        },
    };
    let (backend, states) = if config.shards > 0 {
        let pool = ShardPool::start(engine, config.shards, config.queue_cap);
        let states: Vec<Arc<ServeState>> = (0..pool.shards())
            .map(|i| Arc::clone(pool.shard_state(i)))
            .collect();
        for state in &states {
            state.set_server_info(info);
        }
        (Backend::Sharded(pool), states)
    } else {
        engine.set_scratch_cap(config.workers.max(1));
        let state = Arc::new(ServeState::new(engine));
        state.set_server_info(info);
        (Backend::Direct(Arc::clone(&state)), vec![state])
    };
    let shared = Arc::new(Shared {
        backend,
        edge: EdgeCounters::default(),
        max_conns: config.max_conns,
        read_timeout: (config.read_timeout_ms > 0)
            .then(|| Duration::from_millis(config.read_timeout_ms)),
        write_timeout: (config.write_timeout_ms > 0)
            .then(|| Duration::from_millis(config.write_timeout_ms)),
    });
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let listener = listener.try_clone()?;
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("rip-serve-{i}"))
                .spawn(move || worker_loop(&listener, &shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        states,
        workers,
    })
}

fn worker_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.max_conns > 0
                    && shared.edge.active.load(Ordering::SeqCst) >= shared.max_conns
                {
                    shared.edge.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = reject_connection(stream, shared.max_conns);
                    continue;
                }
                shared.edge.active.fetch_add(1, Ordering::SeqCst);
                match &shared.backend {
                    Backend::Direct(state) => state.count_connection(),
                    Backend::Sharded(_) => {
                        shared.edge.connections.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // A broken connection only ends that connection; the
                // worker goes back to accepting.
                let _ = serve_connection(stream, shared);
                shared.edge.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(e) if polling_retry(&e) => std::thread::sleep(POLL_INTERVAL),
            // Transient accept errors (e.g. aborted handshakes) —
            // back off briefly and keep serving.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// `true` for the error kinds a non-blocking / timed-out read returns
/// when no data is available yet (platform-dependent: `WouldBlock` on
/// Unix, `TimedOut` on Windows).
fn polling_retry(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Tells an over-limit client the server is full — a typed `busy` error
/// line, then a clean close — so "full" is distinguishable from "down".
fn reject_connection(mut stream: TcpStream, max_conns: usize) -> io::Result<()> {
    let response = Response::Error {
        code: ErrorCode::Busy,
        error: format!("server is at its connection limit ({max_conns}); retry later"),
    };
    let mut line = response.render(&Json::Null).to_string();
    line.push('\n');
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Serves one connection until the client disconnects, idles past the
/// read timeout, or the server stops: reads newline-delimited requests,
/// writes one response line each.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Bounded reads so a worker blocked on an idle connection still
    // notices a shutdown within one interval.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(shared.write_timeout)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut conn = ConnCounters::default();
    let mut last_data = Instant::now();
    loop {
        // Drain every complete line before reading more.
        while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=newline).collect();
            let line = String::from_utf8_lossy(&line[..newline]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (response, stop) = shared.handle_line(line, &mut conn);
            let mut rendered = response.to_string();
            rendered.push('\n');
            writer.write_all(rendered.as_bytes())?;
            writer.flush()?;
            if stop {
                shared.request_stop();
                return Ok(());
            }
        }
        if shared.stopping() {
            return Ok(());
        }
        // The JSON layer bounds nesting depth against hostile input; the
        // transport must bound line length for the same threat model, or
        // a client that never sends a newline grows server memory
        // without limit.
        if pending.len() > MAX_LINE_BYTES {
            return close_with_error(
                &mut writer,
                ErrorCode::BadRequest,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ); // drop the connection; the stream is unframed now
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                last_data = Instant::now();
            }
            Err(e) if polling_retry(&e) => {
                if let Some(limit) = shared.read_timeout {
                    if last_data.elapsed() > limit && pending.is_empty() {
                        return close_with_error(
                            &mut writer,
                            ErrorCode::Timeout,
                            format!("connection idle past {} ms", limit.as_millis()),
                        );
                    }
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn close_with_error(writer: &mut TcpStream, code: ErrorCode, error: String) -> io::Result<()> {
    let response = Response::Error { code, error };
    let mut line = response.render(&Json::Null).to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}
