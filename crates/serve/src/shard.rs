//! The sharding layer: N engine workers, each owning a **private**
//! [`Engine`] behind a bounded request queue, with requests routed by
//! the engine's own cache keys so every shard's caches stay hot and
//! disjoint.
//!
//! Why shard at all: a single shared engine funnels every connection
//! through one set of cache locks, and throughput plateaus as
//! connections grow (see `BENCH_serve.json`'s flat 4 → 16 curve).
//! Sharding trades the shared cache for per-shard private ones — the
//! routing function ([`net_shard_key`] / [`tree_shard_key`]) sends a
//! given net's
//! geometry to the *same* shard every time, so each shard re-warms only
//! its slice of the key space and the shards never contend.
//!
//! Correctness is routing-independent by construction: caching never
//! changes results, so any placement of requests onto engines renders
//! byte-identical responses ([`crate::loadgen`] proves this against a
//! single-engine reference). The shard keys are a cache-affinity
//! *hint*, deterministic within a process but not across processes
//! (they hash with [`DefaultHasher`](std::hash::DefaultHasher)).
//!
//! `batch`/`compare` requests fan out: items are partitioned by shard
//! key, each shard solves its slice as one sub-request, and the
//! front-end reassembles per-item results in input order — a batch
//! touching K shards costs K queue slots but keeps every item on its
//! cache-affine shard.
//!
//! Every queue is bounded ([`ShardPool::queue_cap`]): when a shard
//! falls behind, pushes fail fast and the caller surfaces a typed
//! `backpressure` error instead of stalling the accept loop (a closed
//! queue — the server draining — surfaces as `shutting_down` instead).
//! Queue depth high-water marks are tracked per shard and reported by
//! `stats`.
//!
//! Every shard worker is **supervised** ([`crate::fault`]): request
//! handling runs under `catch_unwind`, a panic answers the in-flight
//! request with a typed `internal` error, and the shard's engine is
//! respawned from an `EngineTemplate` — an identical recipe, cold
//! caches — so the pool never loses capacity permanently. Per-shard
//! `panics`/`respawns` tallies land in the `stats` snapshots.

use crate::fault::{internal_error, supervised_handle, FaultInjector};
use crate::protocol::{ErrorCode, Request, Response, ServeState, TreeEntry};
use rip_core::{net_shard_key, tree_shard_key, Engine, RipConfig};
use rip_tech::Technology;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One unit of shard work: a routed request, the channel its typed
/// response (plus the measured queue wait, ns) travels back on, and
/// the enqueue timestamp the wait is measured from.
struct Job {
    request: Request,
    reply: mpsc::Sender<(Response, u64)>,
    enqueued: Instant,
}

/// A bounded MPMC job queue (mutex + condvar) with an exact depth
/// high-water mark — `std::sync::mpsc` hides its depth, and the
/// backpressure contract needs to observe and report it.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

/// Why the queue refused a job — the two cases render different typed
/// errors (`backpressure` asks the client to retry; `shutting_down`
/// tells it the server is going away).
enum QueueRefused {
    /// At capacity; back off and retry.
    Full,
    /// Closed for draining; no retry will help.
    Closed,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    high_water: usize,
    closed: bool,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                high_water: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a job, or rejects it when the queue is full (the
    /// backpressure signal) or closed (server draining). The rejected
    /// job is dropped — its reply channel disconnects, which is how a
    /// waiting `fan_out` slice learns nothing is coming.
    fn push(&self, job: Job) -> Result<(), QueueRefused> {
        let mut inner = self.inner.lock().expect("queue lock is never poisoned");
        if inner.closed {
            return Err(QueueRefused::Closed);
        }
        if inner.jobs.len() >= self.cap {
            return Err(QueueRefused::Full);
        }
        inner.jobs.push_back(job);
        inner.high_water = inner.high_water.max(inner.jobs.len());
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock is never poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .expect("queue lock is never poisoned");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail.
    fn close(&self) {
        self.inner
            .lock()
            .expect("queue lock is never poisoned")
            .closed = true;
        self.ready.notify_all();
    }

    fn high_water(&self) -> usize {
        self.inner
            .lock()
            .expect("queue lock is never poisoned")
            .high_water
    }

    fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("queue lock is never poisoned")
            .jobs
            .len()
    }
}

/// The recipe for building a fresh, identically configured engine
/// state — how a supervised worker respawns after a panic. Cloning the
/// recipe instead of the engine is deliberate: the panicked engine's
/// internals (possibly mid-mutation, possibly holding poisoned locks)
/// are discarded wholesale.
#[derive(Debug, Clone)]
pub(crate) struct EngineTemplate {
    tech: Technology,
    config: RipConfig,
    cache_cap: usize,
    value_cache_cap: usize,
    scratch_cap: usize,
}

impl EngineTemplate {
    /// Captures `engine`'s configuration (the engine itself is not
    /// retained).
    pub(crate) fn of(engine: &Engine, scratch_cap: usize) -> Self {
        Self {
            tech: engine.technology().clone(),
            config: engine.config().clone(),
            cache_cap: engine.cache_cap(),
            value_cache_cap: engine.value_cache_cap(),
            scratch_cap,
        }
    }

    fn fresh_engine(&self) -> Engine {
        let engine = Engine::new(self.tech.clone(), self.config.clone());
        engine.set_cache_cap(self.cache_cap);
        engine.set_value_cache_cap(self.value_cache_cap);
        engine.set_scratch_cap(self.scratch_cap);
        engine
    }

    /// A fresh state replacing `old` after a panic: cold caches (the
    /// engine is new), but the serving counters, topology info, stop
    /// flag **and metrics registry** carry over so monitoring history
    /// survives the respawn — the replacement engine adopts the old
    /// engine's registry, keeping every previously resolved histogram
    /// handle (e.g. a shard worker's queue-wait histogram) valid.
    pub(crate) fn respawn_state(&self, old: &ServeState) -> Arc<ServeState> {
        let mut engine = self.fresh_engine();
        engine.adopt_metrics(Arc::clone(old.engine().metrics_registry()));
        let state = Arc::new(ServeState::new(engine));
        state.set_server_info(old.server_info());
        state.restore_counters(old.requests(), old.connections());
        if old.stopping() {
            state.request_stop();
        }
        state
    }
}

/// The supervised slot of one shard: the live state (swapped on
/// respawn) plus the supervision tallies, shared between the worker
/// thread and the pool.
#[derive(Debug)]
struct ShardCore {
    slot: Mutex<Arc<ServeState>>,
    panics: AtomicU64,
    respawns: AtomicU64,
}

impl ShardCore {
    fn new(state: Arc<ServeState>) -> Self {
        Self {
            slot: Mutex::new(state),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
        }
    }

    /// The live state (post-respawn reads see the replacement).
    fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.slot.lock().expect("shard slot lock is never poisoned"))
    }

    /// Replaces a panicked state with `fresh` and counts the respawn.
    fn respawn(&self, fresh: Arc<ServeState>) {
        *self.slot.lock().expect("shard slot lock is never poisoned") = fresh;
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }
}

/// One shard: a supervised engine slot, its queue, and its counters.
struct Shard {
    core: Arc<ShardCore>,
    queue: Arc<JobQueue>,
    errors: AtomicU64,
}

/// Per-shard monitoring snapshot, rendered into sharded `stats`
/// responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSnapshot {
    /// Requests this shard's worker has handled (fan-out sub-requests
    /// count once per shard they touch).
    pub requests: u64,
    /// Responses from this shard that reported a failure.
    pub errors: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Highest queue depth observed since start (or stats reset).
    pub queue_high_water: usize,
    /// This shard's private-engine cache hit rate.
    pub hit_rate: f64,
    /// Panics caught by this shard's supervised worker.
    pub panics: u64,
    /// Times this shard's engine was respawned after a panic.
    pub respawns: u64,
}

/// A pool of engine-worker shards behind bounded queues; the sharded
/// server's back end. Dropping the pool (or calling
/// [`ShardPool::shutdown`]) closes every queue and joins the workers.
pub struct ShardPool {
    shards: Vec<Shard>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queue_cap: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.shards.len())
            .field("queue_cap", &self.queue_cap)
            .finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Spawns `shards` engine workers. Shard 0 owns `engine`; every
    /// other shard gets a private engine with the same technology,
    /// configuration and cache caps, so any shard answers any request
    /// byte-identically.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0 (the caller decides between direct and
    /// sharded mode) or a worker thread cannot be spawned.
    pub fn start(engine: Engine, shards: usize, queue_cap: usize) -> Self {
        Self::start_with_faults(
            engine,
            shards,
            queue_cap,
            Arc::new(FaultInjector::disabled()),
        )
    }

    /// [`ShardPool::start`] with a shared fault injector wired into every
    /// supervised worker (the injector's ordinals count pool-wide, so a
    /// `panic_every` schedule is deterministic across shards).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0 or a worker thread cannot be spawned.
    pub fn start_with_faults(
        engine: Engine,
        shards: usize,
        queue_cap: usize,
        faults: Arc<FaultInjector>,
    ) -> Self {
        assert!(shards > 0, "a shard pool needs at least one shard");
        let queue_cap = queue_cap.max(1);
        // One worker per shard: batches still fan out across cores via
        // the engine's internal parallelism, but requests on one shard
        // serialize — that is what keeps its cache hot. The same recipe
        // respawns a shard's engine after a caught panic.
        let template = EngineTemplate::of(&engine, 1);
        let mut pool = Self {
            shards: Vec::with_capacity(shards),
            workers: Mutex::new(Vec::with_capacity(shards)),
            queue_cap,
        };
        let mut seed = Some(engine);
        for i in 0..shards {
            let engine = seed.take().unwrap_or_else(|| template.fresh_engine());
            engine.set_scratch_cap(1);
            // Resolved once per worker: the registry survives respawns
            // (the replacement engine adopts it), so this handle stays
            // live for the life of the shard.
            let queue_wait = engine
                .metrics_registry()
                .histogram(&format!("serve_shard{i}_queue_wait_ns"));
            let core = Arc::new(ShardCore::new(Arc::new(ServeState::new(engine))));
            let queue = Arc::new(JobQueue::new(queue_cap));
            let worker_core = Arc::clone(&core);
            let worker_queue = Arc::clone(&queue);
            let worker_template = template.clone();
            let worker_faults = Arc::clone(&faults);
            let worker = std::thread::Builder::new()
                .name(format!("rip-shard-{i}"))
                .spawn(move || {
                    while let Some(job) = worker_queue.pop() {
                        let wait_ns =
                            u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        queue_wait.observe(wait_ns);
                        let state = worker_core.state();
                        state.count_request();
                        let response = match supervised_handle(&state, &job.request, &worker_faults)
                        {
                            Ok(response) => response,
                            Err(panic_msg) => {
                                // The panicked engine may be mid-mutation
                                // or holding poisoned locks: discard the
                                // whole state and answer with a typed
                                // error the caller renders with the
                                // request id.
                                worker_core.panics.fetch_add(1, Ordering::Relaxed);
                                worker_core.respawn(worker_template.respawn_state(&state));
                                internal_error(job.request.cmd(), &panic_msg)
                            }
                        };
                        // A dropped receiver just means the connection
                        // went away mid-flight; the work is done either
                        // way.
                        let _ = job.reply.send((response, wait_ns));
                    }
                })
                .expect("spawn a shard worker thread");
            pool.workers
                .lock()
                .expect("worker list lock is never poisoned")
                .push(worker);
            pool.shards.push(Shard {
                core,
                queue,
                errors: AtomicU64::new(0),
            });
        }
        pool
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// A shard's *live* state (engine + counters), for monitoring and
    /// tests. Returned by value because a respawn swaps the shard's
    /// state out from under any borrow.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn shard_state(&self, index: usize) -> Arc<ServeState> {
        self.shards[index].core.state()
    }

    /// Pool-wide supervision tallies: `(panics, respawns)`.
    pub fn supervision_totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(p, r), shard| {
            (
                p + shard.core.panics.load(Ordering::Relaxed),
                r + shard.core.respawns.load(Ordering::Relaxed),
            )
        })
    }

    /// The bounded per-shard queue depth.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// The shard a net routes to.
    pub fn net_shard(&self, net: &rip_net::TwoPinNet) -> usize {
        (net_shard_key(net) % self.shards.len() as u64) as usize
    }

    /// The shard a tree routes to.
    pub fn tree_shard(&self, tree: &rip_net::TreeNet) -> usize {
        (tree_shard_key(tree) % self.shards.len() as u64) as usize
    }

    /// Routes one typed request to its shard (fanning `batch`/`compare`
    /// out across shards) and waits for the reassembled response.
    /// Queue overflow returns a typed `backpressure` error immediately.
    pub fn dispatch(&self, request: Request) -> Response {
        self.dispatch_traced(request).0
    }

    /// [`ShardPool::dispatch`] plus the measured shard queue wait, ns
    /// (a fan-out reports the slowest slice; rejected requests report
    /// zero) — what the serving edge feeds its request-latency
    /// histograms.
    pub fn dispatch_traced(&self, request: Request) -> (Response, u64) {
        match request {
            Request::Solve { ref net, .. } | Request::TauMin { ref net } => {
                self.submit(self.net_shard(net), request.clone())
            }
            Request::SolveTree { ref tree, .. } => {
                self.submit(self.tree_shard(tree), request.clone())
            }
            Request::Batch {
                nets,
                trees,
                target,
            } => self.fan_out(nets, trees, |nets, trees| Request::Batch {
                nets,
                trees,
                target,
            }),
            Request::Compare {
                nets,
                trees,
                target,
                granularity,
            } => self.fan_out(nets, trees, |nets, trees| Request::Compare {
                nets,
                trees,
                target,
                granularity,
            }),
            // Control-plane requests are answered by the server front
            // end; routing one here (e.g. via a bare pool) lands on
            // shard 0 for a best-effort answer.
            other => self.submit(0, other),
        }
    }

    /// Monitoring snapshots, one per shard in shard order.
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.core.state();
                ShardSnapshot {
                    requests: state.requests(),
                    errors: shard.errors.load(Ordering::Relaxed),
                    queue_depth: shard.queue.depth(),
                    queue_high_water: shard.queue.high_water(),
                    hit_rate: state.engine().stats().hit_rate(),
                    panics: shard.core.panics.load(Ordering::Relaxed),
                    respawns: shard.core.respawns.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Aggregate engine counters over every shard: `(hits, misses,
    /// promotions, evictions, nets_solved, trees_solved)`.
    pub fn engine_totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        let mut totals = (0, 0, 0, 0, 0, 0);
        for shard in &self.shards {
            let stats = shard.core.state().engine().stats();
            totals.0 += stats.hits();
            totals.1 += stats.misses();
            totals.2 += stats.promotions;
            totals.3 += stats.evictions;
            totals.4 += stats.nets_solved;
            totals.5 += stats.trees_solved;
        }
        totals
    }

    /// Every live engine's metrics registry, merged into one snapshot:
    /// stage-latency histograms (same names across shards) sum
    /// bucket-wise, per-shard queue-wait histograms
    /// (`serve_shard{i}_queue_wait_ns`) keep their distinct names.
    pub fn metrics_snapshot(&self) -> rip_obs::RegistrySnapshot {
        let mut merged = rip_obs::RegistrySnapshot::default();
        for shard in &self.shards {
            merged.merge(&shard.core.state().engine().metrics_registry().snapshot());
        }
        merged
    }

    /// Rezeroes every shard's counters — engine stats, request counts,
    /// error and supervision tallies (queue high-water marks stay; they
    /// are lifetime marks of the queue, reset with the queue itself).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            let state = shard.core.state();
            state.engine().reset_stats();
            state.handle_request(&Request::ResetStats);
            shard.errors.store(0, Ordering::Relaxed);
            shard.core.panics.store(0, Ordering::Relaxed);
            shard.core.respawns.store(0, Ordering::Relaxed);
        }
    }

    /// Closes every queue and joins the workers; pending jobs drain
    /// first.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("worker list lock is never poisoned")
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Submits one request to one shard and waits for its response plus
    /// the measured queue wait (rejections report a zero wait).
    fn submit(&self, shard_index: usize, request: Request) -> (Response, u64) {
        let shard = &self.shards[shard_index];
        let (reply, inbox) = mpsc::channel();
        match shard.queue.push(Job {
            request,
            reply,
            enqueued: Instant::now(),
        }) {
            Ok(()) => match inbox.recv() {
                Ok((response, wait_ns)) => {
                    if response.is_error() {
                        shard.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    (response, wait_ns)
                }
                // The worker exited between push and reply: draining.
                Err(_) => (shutting_down_error(), 0),
            },
            Err(QueueRefused::Closed) => (shutting_down_error(), 0),
            Err(QueueRefused::Full) => {
                shard.errors.fetch_add(1, Ordering::Relaxed);
                (self.backpressure(shard_index), 0)
            }
        }
    }

    fn backpressure(&self, shard_index: usize) -> Response {
        Response::Error {
            code: ErrorCode::Backpressure,
            error: format!(
                "shard {shard_index} queue is full ({} pending, cap {}); back off and retry",
                self.shards[shard_index].queue.depth(),
                self.queue_cap
            ),
        }
    }

    /// Fans a batch-shaped request out: partitions items by shard key,
    /// submits one sub-request per touched shard, and reassembles
    /// per-item results in input order. The rendered response is
    /// byte-identical to a single engine handling the whole batch,
    /// because per-item results are placement-independent and the
    /// summary recomputes from the merged rows.
    fn fan_out(
        &self,
        nets: Vec<rip_net::TwoPinNet>,
        trees: Vec<TreeEntry>,
        make: impl Fn(Vec<rip_net::TwoPinNet>, Vec<TreeEntry>) -> Request,
    ) -> (Response, u64) {
        let shard_count = self.shards.len();
        // Partition while remembering every item's original position.
        let mut net_slices: Vec<(Vec<usize>, Vec<rip_net::TwoPinNet>)> =
            (0..shard_count).map(|_| Default::default()).collect();
        for (i, net) in nets.into_iter().enumerate() {
            let s = self.net_shard(&net);
            net_slices[s].0.push(i);
            net_slices[s].1.push(net);
        }
        let mut tree_slices: Vec<(Vec<usize>, Vec<TreeEntry>)> =
            (0..shard_count).map(|_| Default::default()).collect();
        for (i, entry) in trees.into_iter().enumerate() {
            let s = self.tree_shard(&entry.tree);
            tree_slices[s].0.push(i);
            tree_slices[s].1.push(entry);
        }
        let net_total: usize = net_slices.iter().map(|(idx, _)| idx.len()).sum();
        let tree_total: usize = tree_slices.iter().map(|(idx, _)| idx.len()).sum();

        // Submit every touched shard's slice before collecting any
        // response, so the slices solve concurrently.
        let mut pending: Vec<(usize, mpsc::Receiver<(Response, u64)>)> = Vec::new();
        let mut overflow: Option<usize> = None;
        let mut closed = false;
        for s in 0..shard_count {
            let (net_idx, shard_nets) = std::mem::take(&mut net_slices[s]);
            let (tree_idx, shard_trees) = std::mem::take(&mut tree_slices[s]);
            if net_idx.is_empty() && tree_idx.is_empty() {
                continue;
            }
            net_slices[s].0 = net_idx;
            tree_slices[s].0 = tree_idx;
            let (reply, inbox) = mpsc::channel();
            match self.shards[s].queue.push(Job {
                request: make(shard_nets, shard_trees),
                reply,
                enqueued: Instant::now(),
            }) {
                Ok(()) => pending.push((s, inbox)),
                Err(QueueRefused::Closed) => closed = true,
                Err(QueueRefused::Full) => {
                    self.shards[s].errors.fetch_add(1, Ordering::Relaxed);
                    overflow.get_or_insert(s);
                }
            }
        }

        // Reassemble in input order (the sub-requests that did get
        // queued still drain even when one shard overflowed — their
        // work warms that shard's cache either way). The fan-out's
        // queue wait is its slowest slice's: that is what bounded the
        // request's end-to-end latency.
        let mut merged = MergedBatch::new(net_total, tree_total);
        let mut max_wait = 0u64;
        for (s, inbox) in pending {
            let response = match inbox.recv() {
                Ok((response, wait_ns)) => {
                    max_wait = max_wait.max(wait_ns);
                    response
                }
                Err(_) => {
                    closed = true;
                    shutting_down_error()
                }
            };
            if response.is_error() {
                self.shards[s].errors.fetch_add(1, Ordering::Relaxed);
            }
            merged.absorb(&net_slices[s].0, &tree_slices[s].0, response);
        }
        // A draining pool outranks overflow: retrying won't help.
        if closed {
            return (shutting_down_error(), max_wait);
        }
        if let Some(s) = overflow {
            return (self.backpressure(s), max_wait);
        }
        (merged.finish(), max_wait)
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The typed rejection a draining pool answers with: unlike
/// `backpressure`, no retry against this server will help.
fn shutting_down_error() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        error: "the server is shutting down; no new requests are accepted".to_string(),
    }
}

/// Input-ordered reassembly of fanned-out `batch`/`compare` slices.
struct MergedBatch {
    results: Vec<Option<Result<crate::protocol::SolveResult, String>>>,
    tree_results: Vec<Option<Result<crate::protocol::TreeSolveResult, String>>>,
    rows: Vec<Option<(Option<f64>, f64)>>,
    tree_rows: Vec<Option<(Option<f64>, f64)>>,
    is_compare: bool,
    error: Option<Response>,
}

impl MergedBatch {
    fn new(nets: usize, trees: usize) -> Self {
        Self {
            results: vec![None; nets],
            tree_results: vec![None; trees],
            rows: vec![None; nets],
            tree_rows: vec![None; trees],
            is_compare: false,
            error: None,
        }
    }

    fn absorb(&mut self, net_idx: &[usize], tree_idx: &[usize], response: Response) {
        match response {
            Response::Batch {
                results,
                tree_results,
            } => {
                for (slot, result) in net_idx.iter().zip(results) {
                    self.results[*slot] = Some(result);
                }
                for (slot, result) in tree_idx.iter().zip(tree_results) {
                    self.tree_results[*slot] = Some(result);
                }
            }
            Response::Compare {
                rows, tree_rows, ..
            } => {
                self.is_compare = true;
                for (slot, row) in net_idx.iter().zip(rows) {
                    self.rows[*slot] = Some(row);
                }
                for (slot, row) in tree_idx.iter().zip(tree_rows) {
                    self.tree_rows[*slot] = Some(row);
                }
            }
            other => {
                // A shard-level failure (e.g. a compare slice hitting a
                // non-infeasibility solver error) fails the request.
                self.error.get_or_insert(other);
            }
        }
    }

    fn finish(self) -> Response {
        if let Some(error) = self.error {
            return error;
        }
        if self.is_compare {
            let rows: Vec<(Option<f64>, f64)> = self.rows.into_iter().flatten().collect();
            let tree_rows: Vec<(Option<f64>, f64)> = self.tree_rows.into_iter().flatten().collect();
            let mut all = rows.clone();
            all.extend(tree_rows.iter().copied());
            let summary = rip_core::summarize_savings(&all);
            Response::Compare {
                rows,
                tree_rows,
                summary,
            }
        } else {
            Response::Batch {
                results: self
                    .results
                    .into_iter()
                    .map(|r| r.expect("every net slice reassembles"))
                    .collect(),
                tree_results: self
                    .tree_results
                    .into_iter()
                    .map(|r| r.expect("every tree slice reassembles"))
                    .collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_line, Target};
    use rip_core::RipConfig;
    use rip_net::{NetGenerator, RandomNetConfig, RandomTreeConfig, TreeNetGenerator};
    use rip_tech::Technology;

    fn pool(shards: usize) -> ShardPool {
        ShardPool::start(Engine::paper(Technology::generic_180nm()), shards, 64)
    }

    fn reference() -> ServeState {
        ServeState::new(Engine::paper(Technology::generic_180nm()))
    }

    #[test]
    fn routing_is_deterministic_and_uses_every_shard_eventually() {
        let pool = pool(4);
        let nets = NetGenerator::suite(RandomNetConfig::default(), 77, 32).unwrap();
        let mut used = [false; 4];
        for net in &nets {
            let shard = pool.net_shard(net);
            assert_eq!(shard, pool.net_shard(net), "routing must be stable");
            used[shard] = true;
        }
        assert!(
            used.iter().filter(|u| **u).count() >= 2,
            "32 random nets should spread across shards: {used:?}"
        );
    }

    #[test]
    fn sharded_responses_are_byte_identical_to_a_single_engine() {
        let pool = pool(3);
        let reference = reference();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 41, 5).unwrap();
        let trees = TreeNetGenerator::suite(RandomTreeConfig::compact(), 42, 3).unwrap();
        let mut lines = vec![];
        for net in &nets {
            lines.push(format!(
                r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
                crate::protocol::net_to_json(net)
            ));
        }
        for tree in &trees {
            lines.push(format!(
                r#"{{"id":2,"cmd":"solve_tree","tree":{},"target_mult":1.25}}"#,
                crate::protocol::tree_to_json(tree)
            ));
        }
        let all_nets: Vec<String> = nets
            .iter()
            .map(|n| crate::protocol::net_to_json(n).to_string())
            .collect();
        let all_trees: Vec<String> = trees
            .iter()
            .map(|t| crate::protocol::tree_to_json(t).to_string())
            .collect();
        lines.push(format!(
            r#"{{"id":3,"cmd":"batch","nets":[{}],"trees":[{}],"target_mult":1.4}}"#,
            all_nets.join(","),
            all_trees.join(",")
        ));
        lines.push(format!(
            r#"{{"id":4,"cmd":"compare","nets":[{}],"trees":[{}],"target_mult":1.5,"granularity":40}}"#,
            all_nets.join(","),
            all_trees.join(",")
        ));
        lines.push(format!(
            r#"{{"id":5,"cmd":"tau_min","net":{}}}"#,
            all_nets[0]
        ));
        for line in &lines {
            let (id, request) = parse_line(line);
            let request = request.expect("test lines are valid");
            let sharded = pool.dispatch(request.clone()).render(&id).to_string();
            let direct = reference.handle_request(&request).render(&id).to_string();
            assert_eq!(sharded, direct, "sharding changed a response for {line}");
        }
    }

    #[test]
    fn batch_fan_out_preserves_input_order() {
        let pool = pool(4);
        let reference = reference();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 99, 9).unwrap();
        let request = Request::Batch {
            nets: nets.clone(),
            trees: vec![],
            target: Target::TauMinMultiple(1.4),
        };
        let (sharded, direct) = (
            pool.dispatch(request.clone()),
            reference.handle_request(&request),
        );
        // Typed equality, not just rendered bytes: order and values.
        assert_eq!(sharded, direct);
    }

    #[test]
    fn full_queues_surface_typed_backpressure() {
        // A pool whose single shard is blocked: stuff the queue
        // manually, then dispatch and expect the typed error.
        let engine = Engine::new(Technology::generic_180nm(), RipConfig::paper());
        let pool = ShardPool::start(engine, 1, 1);
        let nets = NetGenerator::suite(RandomNetConfig::default(), 7, 1).unwrap();
        // Occupy the worker long enough to fill the queue behind it:
        // push jobs whose replies we never read, with a queue cap of 1.
        // The worker drains them quickly, so race-free assertion needs
        // the direct path: close the queue's capacity by filling it
        // while the worker is busy. Simplest deterministic route: close
        // the pool's queue entirely and check the shutdown shape, then
        // check the overflow shape via a raw push.
        let shard = &pool.shards[0];
        let hold = {
            // Park a job the worker will pick up and block on… we have
            // no blocking request, so instead fill the queue while
            // holding the lock is impossible from here. Push two jobs
            // back-to-back: cap 1 means the second push fails unless
            // the worker already drained the first — retry until the
            // race lands.
            let mut saw_backpressure = false;
            for _ in 0..200 {
                let (reply_a, _inbox_a) = mpsc::channel();
                let (reply_b, _inbox_b) = mpsc::channel();
                let job = |reply| Job {
                    request: Request::Solve {
                        net: nets[0].clone(),
                        target: Target::TauMinMultiple(1.4),
                    },
                    reply,
                    enqueued: Instant::now(),
                };
                if shard.queue.push(job(reply_a)).is_ok() && shard.queue.push(job(reply_b)).is_err()
                {
                    saw_backpressure = true;
                    break;
                }
            }
            saw_backpressure
        };
        assert!(hold, "a cap-1 queue must reject a second pending job");
        assert!(shard.queue.high_water() >= 1);
        let response = pool.backpressure(0);
        match &response {
            Response::Error { code, error } => {
                assert_eq!(*code, ErrorCode::Backpressure);
                assert!(error.contains("back off"), "{error}");
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        let rendered = response.render(&crate::json::Json::Null).to_string();
        assert!(rendered.contains(r#""code":"backpressure""#), "{rendered}");
    }

    #[test]
    fn snapshots_and_shutdown_account_for_work() {
        let pool = pool(2);
        let nets = NetGenerator::suite(RandomNetConfig::default(), 13, 4).unwrap();
        for net in &nets {
            let response = pool.dispatch(Request::Solve {
                net: net.clone(),
                target: Target::TauMinMultiple(1.4),
            });
            assert!(!response.is_error(), "{response:?}");
        }
        let snapshots = pool.snapshots();
        assert_eq!(snapshots.len(), 2);
        let total: u64 = snapshots.iter().map(|s| s.requests).sum();
        assert_eq!(total, 4, "{snapshots:?}");
        let (hits, misses, ..) = pool.engine_totals();
        assert!(hits + misses > 0);
        pool.shutdown();
        // After shutdown the queues reject work with the typed
        // shutting_down error — not backpressure, which would invite a
        // futile retry.
        let response = pool.dispatch(Request::TauMin {
            net: nets[0].clone(),
        });
        match response {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
            other => panic!("expected an error after shutdown, got {other:?}"),
        }
    }

    #[test]
    fn supervised_workers_answer_panics_and_respawn() {
        use crate::fault::{FaultInjector, FaultPlan};
        let faults = Arc::new(FaultInjector::new(FaultPlan {
            panic_every: 2,
            ..FaultPlan::none()
        }));
        let pool = ShardPool::start_with_faults(
            Engine::paper(Technology::generic_180nm()),
            1,
            64,
            Arc::clone(&faults),
        );
        let reference = reference();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 23, 1).unwrap();
        let request = Request::Solve {
            net: nets[0].clone(),
            target: Target::TauMinMultiple(1.4),
        };
        let expected = reference
            .handle_request(&request)
            .render(&crate::json::Json::Null)
            .to_string();
        // Eligible ordinals 1..=4: ordinals 2 and 4 panic, 1 and 3
        // answer — and the post-panic answers are byte-identical to the
        // fault-free reference (the respawned engine is the same
        // recipe, just cold).
        for k in 1..=4u64 {
            let response = pool.dispatch(request.clone());
            if k % 2 == 0 {
                match &response {
                    Response::Error { code, error } => {
                        assert_eq!(*code, ErrorCode::Internal);
                        assert!(error.contains("solve"), "{error}");
                        assert!(error.contains("respawned"), "{error}");
                    }
                    other => panic!("ordinal {k} should have panicked, got {other:?}"),
                }
            } else {
                let rendered = response.render(&crate::json::Json::Null).to_string();
                assert_eq!(rendered, expected, "ordinal {k} diverged after a respawn");
            }
        }
        assert_eq!(pool.supervision_totals(), (2, 2));
        assert_eq!(faults.injected_panics(), 2);
        let snapshots = pool.snapshots();
        assert_eq!(snapshots[0].panics, 2, "{snapshots:?}");
        assert_eq!(snapshots[0].respawns, 2, "{snapshots:?}");
        // The respawned state carried the request counter over.
        assert_eq!(pool.shard_state(0).requests(), 4);
        // reset_stats clears the supervision tallies too.
        pool.reset_stats();
        assert_eq!(pool.supervision_totals(), (0, 0));
    }
}
