//! Switch-level RC model of a repeater (Section 4.1, Figure 2 of the paper).
//!
//! A repeater of width `w` (in multiples of the minimum width `u`) is
//! modelled by three parameters of the *unit-width* device:
//!
//! * output resistance `Rs` — scales as `Rs / w`,
//! * input capacitance `Co` — scales as `Co · w`,
//! * output (drain) capacitance `Cp` — scales as `Cp · w`.
//!
//! The interconnect driver and receiver are modelled as repeaters of given
//! widths `w_d` and `w_r` (the receiver contributes only its input
//! capacitance `Co · w_r`).

use crate::error::{ensure_positive, TechError};

/// Switch-level RC parameters of a unit-width repeater.
///
/// All widths in this workspace are expressed in multiples of the minimum
/// repeater width `u`, so the scaled quantities are obtained by simple
/// multiplication/division with the dimensionless width.
///
/// # Examples
///
/// ```
/// use rip_tech::RepeaterDevice;
///
/// # fn main() -> Result<(), rip_tech::TechError> {
/// let dev = RepeaterDevice::new(6000.0, 1.8, 1.4)?;
/// // A 100u repeater drives with Rs/100 and loads its driver with Co*100.
/// assert_eq!(dev.output_resistance(100.0), 60.0);
/// assert_eq!(dev.input_cap(100.0), 180.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterDevice {
    rs: f64,
    co: f64,
    cp: f64,
}

impl RepeaterDevice {
    /// Creates a device model from unit-width parameters.
    ///
    /// * `rs` — output resistance of the unit-width repeater, in Ω·u.
    /// * `co` — input capacitance per unit width, in fF/u.
    /// * `cp` — output (drain) capacitance per unit width, in fF/u.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::NonPositive`] or [`TechError::NotFinite`] if any
    /// parameter is not a strictly positive finite number.
    pub fn new(rs: f64, co: f64, cp: f64) -> Result<Self, TechError> {
        Ok(Self {
            rs: ensure_positive("repeater output resistance rs", rs)?,
            co: ensure_positive("repeater input capacitance co", co)?,
            cp: ensure_positive("repeater output capacitance cp", cp)?,
        })
    }

    /// Unit-width output resistance `Rs`, in Ω·u.
    #[inline]
    pub fn rs(&self) -> f64 {
        self.rs
    }

    /// Input capacitance per unit width `Co`, in fF/u.
    #[inline]
    pub fn co(&self) -> f64 {
        self.co
    }

    /// Output (drain) capacitance per unit width `Cp`, in fF/u.
    #[inline]
    pub fn cp(&self) -> f64 {
        self.cp
    }

    /// Output resistance of a repeater of width `w` (in u): `Rs / w`, in Ω.
    #[inline]
    pub fn output_resistance(&self, width: f64) -> f64 {
        self.rs / width
    }

    /// Input capacitance of a repeater of width `w` (in u): `Co · w`, in fF.
    #[inline]
    pub fn input_cap(&self, width: f64) -> f64 {
        self.co * width
    }

    /// Output (drain) capacitance of a repeater of width `w`: `Cp · w`, fF.
    #[inline]
    pub fn output_cap(&self, width: f64) -> f64 {
        self.cp * width
    }

    /// Width-independent intrinsic delay `Rs · Cp` of the repeater, in fs.
    ///
    /// This is the first term of the paper's Eq. (1): the output resistance
    /// `Rs/w` discharging the repeater's own drain capacitance `Cp·w`.
    #[inline]
    pub fn intrinsic_delay(&self) -> f64 {
        self.rs * self.cp
    }

    /// The classic closed-form optimal repeater width for a uniform wire
    /// with resistance `r` (Ω/µm) and capacitance `c` (fF/µm):
    /// `w_opt = sqrt(Rs·c / (r·Co))` (Bakoglu).
    ///
    /// Used in tests and as a sanity anchor for library ranges; the
    /// algorithms themselves never assume uniform wires.
    #[inline]
    pub fn optimal_width_uniform(&self, r_per_um: f64, c_per_um: f64) -> f64 {
        (self.rs * c_per_um / (r_per_um * self.co)).sqrt()
    }

    /// The classic closed-form optimal repeater spacing for a uniform wire:
    /// `l_opt = sqrt(2·Rs·(Cp + Co) / (r·c))`, in µm.
    #[inline]
    pub fn optimal_spacing_uniform(&self, r_per_um: f64, c_per_um: f64) -> f64 {
        (2.0 * self.rs * (self.cp + self.co) / (r_per_um * c_per_um)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> RepeaterDevice {
        RepeaterDevice::new(6000.0, 1.8, 1.4).unwrap()
    }

    #[test]
    fn accessors_return_constructor_values() {
        let d = dev();
        assert_eq!(d.rs(), 6000.0);
        assert_eq!(d.co(), 1.8);
        assert_eq!(d.cp(), 1.4);
    }

    #[test]
    fn scaling_laws() {
        let d = dev();
        // Doubling the width halves the resistance and doubles the caps.
        assert_eq!(d.output_resistance(2.0), d.output_resistance(1.0) / 2.0);
        assert_eq!(d.input_cap(2.0), 2.0 * d.input_cap(1.0));
        assert_eq!(d.output_cap(2.0), 2.0 * d.output_cap(1.0));
    }

    #[test]
    fn intrinsic_delay_is_width_independent() {
        let d = dev();
        for w in [1.0, 10.0, 400.0] {
            let delay = d.output_resistance(w) * d.output_cap(w);
            assert!((delay - d.intrinsic_delay()).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(RepeaterDevice::new(0.0, 1.8, 1.4).is_err());
        assert!(RepeaterDevice::new(6000.0, -1.0, 1.4).is_err());
        assert!(RepeaterDevice::new(6000.0, 1.8, f64::NAN).is_err());
    }

    #[test]
    fn bakoglu_optimum_is_in_plausible_range_for_180nm() {
        // For 180 nm global wiring the optimal repeater is expected to be
        // on the order of 50u-150u wide with mm-scale spacing; this anchors
        // the paper's library choices (80u..400u coarse, 10u..400u fine).
        let d = dev();
        let w_opt = d.optimal_width_uniform(0.08, 0.2);
        let l_opt = d.optimal_spacing_uniform(0.08, 0.2);
        assert!(w_opt > 40.0 && w_opt < 200.0, "w_opt = {w_opt}");
        assert!(l_opt > 500.0 && l_opt < 5000.0, "l_opt = {l_opt}");
    }

    #[test]
    fn optimal_width_scales_with_wire_ratio() {
        let d = dev();
        // Quadrupling wire capacitance doubles the optimal width.
        let w1 = d.optimal_width_uniform(0.08, 0.2);
        let w2 = d.optimal_width_uniform(0.08, 0.8);
        assert!((w2 / w1 - 2.0).abs() < 1e-12);
    }
}
