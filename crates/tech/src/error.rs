//! Error types for the technology substrate.

use std::fmt;

/// Errors produced while constructing or validating technology data.
///
/// All constructors in this crate validate their inputs eagerly
/// (C-VALIDATE); invalid physical parameters are rejected with a
/// descriptive variant rather than producing NaNs downstream.
///
/// # Examples
///
/// ```
/// use rip_tech::{RepeaterDevice, TechError};
///
/// let err = RepeaterDevice::new(-1.0, 1.8, 1.4).unwrap_err();
/// assert!(matches!(err, TechError::NonPositive { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TechError {
    /// A physical parameter that must be strictly positive was zero or
    /// negative.
    NonPositive {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter was NaN or infinite.
    NotFinite {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// A collection that must be non-empty (e.g. a repeater library) was
    /// empty.
    Empty {
        /// Name of the offending collection.
        what: &'static str,
    },
    /// A parameter that must lie in `[0, 1]` (e.g. a switching activity
    /// factor) was outside that range.
    OutOfUnitRange {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::NonPositive { what, value } => {
                write!(f, "{what} must be strictly positive, got {value}")
            }
            TechError::NotFinite { what } => {
                write!(f, "{what} must be finite")
            }
            TechError::Empty { what } => write!(f, "{what} must not be empty"),
            TechError::OutOfUnitRange { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
        }
    }
}

crate::impl_leaf_error!(TechError);

/// Validates that `value` is finite and strictly positive.
///
/// Shared helper used by every constructor in this crate.
pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<f64, TechError> {
    if !value.is_finite() {
        return Err(TechError::NotFinite { what });
    }
    if value <= 0.0 {
        return Err(TechError::NonPositive { what, value });
    }
    Ok(value)
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(what: &'static str, value: f64) -> Result<f64, TechError> {
    if !value.is_finite() {
        return Err(TechError::NotFinite { what });
    }
    if value < 0.0 {
        return Err(TechError::NonPositive { what, value });
    }
    Ok(value)
}

/// Validates that `value` is finite and lies in `[0, 1]`.
pub(crate) fn ensure_unit_range(what: &'static str, value: f64) -> Result<f64, TechError> {
    if !value.is_finite() {
        return Err(TechError::NotFinite { what });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(TechError::OutOfUnitRange { what, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_positive_accepts_positive() {
        assert_eq!(ensure_positive("x", 2.5), Ok(2.5));
    }

    #[test]
    fn ensure_positive_rejects_zero() {
        assert_eq!(
            ensure_positive("x", 0.0),
            Err(TechError::NonPositive {
                what: "x",
                value: 0.0
            })
        );
    }

    #[test]
    fn ensure_positive_rejects_negative() {
        assert!(ensure_positive("x", -1.0).is_err());
    }

    #[test]
    fn ensure_positive_rejects_nan() {
        assert_eq!(
            ensure_positive("x", f64::NAN),
            Err(TechError::NotFinite { what: "x" })
        );
    }

    #[test]
    fn ensure_positive_rejects_infinity() {
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn ensure_non_negative_accepts_zero() {
        assert_eq!(ensure_non_negative("x", 0.0), Ok(0.0));
    }

    #[test]
    fn ensure_unit_range_bounds() {
        assert!(ensure_unit_range("a", 0.0).is_ok());
        assert!(ensure_unit_range("a", 1.0).is_ok());
        assert!(ensure_unit_range("a", 1.0001).is_err());
        assert!(ensure_unit_range("a", -0.0001).is_err());
    }

    #[test]
    fn display_is_informative() {
        let msg = TechError::NonPositive {
            what: "rs",
            value: -3.0,
        }
        .to_string();
        assert!(msg.contains("rs"));
        assert!(msg.contains("-3"));
        let msg = TechError::Empty { what: "library" }.to_string();
        assert!(msg.contains("library"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TechError>();
    }
}
