//! Shared error-boilerplate macros.
//!
//! Every crate in the workspace exposes one error enum with the same
//! shape: hand-written `Display` prose per variant, a `std::error::Error`
//! impl whose `source()` walks wrapper variants, and `From` conversions
//! for each wrapped inner error. Before these macros, the eight
//! `error.rs` files each re-implemented that plumbing by hand; now the
//! `Display` prose stays local (it is the part that genuinely differs)
//! and everything mechanical comes from here, so the `From` chain up to
//! `rip_core::RipError` stays uniform by construction.

/// Implements `std::error::Error` for an error type with no underlying
/// source (a *leaf* of the workspace error chain).
///
/// # Examples
///
/// ```
/// use std::fmt;
///
/// #[derive(Debug)]
/// struct MyError;
///
/// impl fmt::Display for MyError {
///     fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
///         f.write_str("my error")
///     }
/// }
///
/// rip_tech::impl_leaf_error!(MyError);
/// assert!(std::error::Error::source(&MyError).is_none());
/// ```
#[macro_export]
macro_rules! impl_leaf_error {
    ($err:ty) => {
        impl ::std::error::Error for $err {}
    };
}

/// Implements `std::error::Error` (with `source()` delegating to the
/// listed wrapper variants) and one `From<inner>` conversion per variant
/// for an error enum that wraps other errors.
///
/// Variants not listed (plain data variants like `Infeasible { .. }`)
/// report no source.
///
/// # Examples
///
/// ```
/// use std::fmt;
///
/// #[derive(Debug)]
/// enum Outer {
///     Io(std::io::Error),
///     Other,
/// }
///
/// impl fmt::Display for Outer {
///     fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
///         match self {
///             Outer::Io(e) => write!(f, "io: {e}"),
///             Outer::Other => f.write_str("other"),
///         }
///     }
/// }
///
/// rip_tech::impl_error_wrapper!(Outer { Io(std::io::Error) });
///
/// let outer: Outer = std::io::Error::other("boom").into();
/// assert!(std::error::Error::source(&outer).is_some());
/// assert!(std::error::Error::source(&Outer::Other).is_none());
/// ```
#[macro_export]
macro_rules! impl_error_wrapper {
    ($err:ident { $($variant:ident($inner:ty)),+ $(,)? }) => {
        impl ::std::error::Error for $err {
            fn source(&self) -> ::core::option::Option<&(dyn ::std::error::Error + 'static)> {
                #[allow(unreachable_patterns)]
                match self {
                    $( $err::$variant(e) => ::core::option::Option::Some(e), )+
                    _ => ::core::option::Option::None,
                }
            }
        }

        $(
            impl ::core::convert::From<$inner> for $err {
                fn from(e: $inner) -> Self {
                    $err::$variant(e)
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use std::error::Error;
    use std::fmt;

    #[derive(Debug, PartialEq)]
    struct Leaf;

    impl fmt::Display for Leaf {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("leaf")
        }
    }

    impl_leaf_error!(Leaf);

    #[derive(Debug)]
    enum Wrapper {
        Inner(Leaf),
        Plain { code: u32 },
    }

    impl fmt::Display for Wrapper {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Wrapper::Inner(e) => write!(f, "wrapped: {e}"),
                Wrapper::Plain { code } => write!(f, "plain {code}"),
            }
        }
    }

    impl_error_wrapper!(Wrapper { Inner(Leaf) });

    #[test]
    fn leaf_has_no_source() {
        assert!(Leaf.source().is_none());
    }

    #[test]
    fn wrapper_sources_and_converts() {
        let w: Wrapper = Leaf.into();
        assert!(matches!(w, Wrapper::Inner(_)));
        assert_eq!(w.source().unwrap().to_string(), "leaf");
        assert!(Wrapper::Plain { code: 7 }.source().is_none());
    }
}
