//! # rip-tech — technology substrate for the RIP reproduction
//!
//! This crate provides the process-technology models that every other crate
//! in the workspace builds on:
//!
//! * [`RepeaterDevice`] — the switch-level RC model of a repeater
//!   (`Rs`, `Co`, `Cp` of the unit-width device; Figure 2 of the paper);
//! * [`WireLayer`] — per-unit-length RC of a routing layer, with synthetic
//!   0.18 µm metal4/metal5 presets;
//! * [`PowerParams`] — the dynamic + leakage power model of Eqs. (3)–(4),
//!   including the reduction of power minimization to total-repeater-width
//!   minimization;
//! * [`RepeaterLibrary`] — discrete width libraries for the DP engines,
//!   including the paper's baseline constructions and RIP's
//!   refined-solution rounding ([`RepeaterLibrary::from_refined_widths`]);
//! * [`Technology`] — a bundle of the above with the
//!   [`Technology::generic_180nm`] preset used by all experiments.
//!
//! Units are uniform across the workspace (µm / Ω / fF / fs / u); see
//! [`units`].
//!
//! # Example
//!
//! ```
//! use rip_tech::{RepeaterLibrary, Technology};
//!
//! # fn main() -> Result<(), rip_tech::TechError> {
//! let tech = Technology::generic_180nm();
//!
//! // The paper's Table 2 baseline library: range (10u, 400u), step 40u.
//! let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0)?;
//!
//! // Power cost per unit width (Eq. 4's gamma):
//! let gamma = tech.power().gamma(tech.device());
//! assert!(gamma > 0.0);
//! assert!(lib.len() >= 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod error;
mod errors;
mod library;
mod power;
mod process;
pub mod units;
mod wire;

pub use device::RepeaterDevice;
pub use error::TechError;
pub use library::{round_to_grid, RepeaterLibrary};
pub use power::PowerParams;
pub use process::Technology;
pub use wire::WireLayer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RepeaterDevice>();
        assert_send_sync::<WireLayer>();
        assert_send_sync::<PowerParams>();
        assert_send_sync::<RepeaterLibrary>();
        assert_send_sync::<Technology>();
        assert_send_sync::<TechError>();
    }

    #[test]
    fn debug_representations_are_nonempty() {
        assert!(!format!("{:?}", Technology::generic_180nm()).is_empty());
        assert!(!format!("{:?}", RepeaterLibrary::paper_coarse()).is_empty());
    }
}
