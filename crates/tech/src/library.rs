//! Discrete repeater libraries.
//!
//! DP-based repeater insertion chooses widths from a finite library. The
//! paper's key observation is that *which* library you hand to the DP
//! matters enormously for power: coarse libraries miss near-optimal widths
//! (power loss), fine libraries blow up the pseudo-polynomial DP runtime.
//! RIP sidesteps the tradeoff by synthesizing a tiny, design-specific
//! library from the analytically refined solution
//! ([`RepeaterLibrary::from_refined_widths`]).
//!
//! All widths are in multiples of the minimum repeater width `u`, sorted
//! ascending and deduplicated.

use crate::error::{ensure_positive, TechError};

/// Tolerance used to deduplicate widths that differ only by floating-point
/// noise (widths are conceptually integer multiples of `u`).
const WIDTH_DEDUP_TOL: f64 = 1.0e-6;

/// A sorted, deduplicated set of allowed repeater widths (in units of `u`).
///
/// # Examples
///
/// ```
/// use rip_tech::RepeaterLibrary;
///
/// # fn main() -> Result<(), rip_tech::TechError> {
/// // The paper's baseline DP library: size 10, min width 10u, step g=10u.
/// let lib = RepeaterLibrary::uniform(10.0, 10.0, 10)?;
/// assert_eq!(lib.len(), 10);
/// assert_eq!(lib.min_width(), 10.0);
/// assert_eq!(lib.max_width(), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RepeaterLibrary {
    widths: Vec<f64>,
}

impl RepeaterLibrary {
    /// Creates a library from an arbitrary collection of widths.
    ///
    /// Widths are validated (strictly positive, finite), sorted ascending
    /// and deduplicated within a small absolute tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Empty`] for an empty collection and
    /// [`TechError::NonPositive`]/[`TechError::NotFinite`] for invalid
    /// widths.
    pub fn from_widths(widths: impl IntoIterator<Item = f64>) -> Result<Self, TechError> {
        let mut ws: Vec<f64> = Vec::new();
        for w in widths {
            ws.push(ensure_positive("repeater width", w)?);
        }
        if ws.is_empty() {
            return Err(TechError::Empty {
                what: "repeater library",
            });
        }
        ws.sort_by(|a, b| a.partial_cmp(b).expect("validated finite widths"));
        ws.dedup_by(|a, b| (*a - *b).abs() <= WIDTH_DEDUP_TOL);
        Ok(Self { widths: ws })
    }

    /// Creates a uniform library: `{min, min+step, …, min+(count−1)·step}`.
    ///
    /// This is the construction used for the paper's DP baseline
    /// (Section 6): library size 10, minimum width 10u, granularity `g`.
    ///
    /// # Errors
    ///
    /// Returns an error if `min` or `step` is not strictly positive or
    /// `count` is zero.
    pub fn uniform(min: f64, step: f64, count: usize) -> Result<Self, TechError> {
        ensure_positive("library minimum width", min)?;
        ensure_positive("library width step", step)?;
        if count == 0 {
            return Err(TechError::Empty {
                what: "repeater library",
            });
        }
        Self::from_widths((0..count).map(|i| min + step * i as f64))
    }

    /// Creates a library covering the closed range `[min, max]` with the
    /// given step: `{min, min+step, …}` plus `max` if not already included.
    ///
    /// This is the construction used for the paper's Table 2 baseline:
    /// fixed width range `(10u, 400u)` with granularity `g_DP` swept from
    /// 40u down to 10u.
    ///
    /// # Errors
    ///
    /// Returns an error if the range or step is invalid (`max < min`, or
    /// non-positive values).
    pub fn range_step(min: f64, max: f64, step: f64) -> Result<Self, TechError> {
        ensure_positive("library minimum width", min)?;
        ensure_positive("library maximum width", max)?;
        ensure_positive("library width step", step)?;
        if max < min {
            return Err(TechError::NonPositive {
                what: "library width range (max - min)",
                value: max - min,
            });
        }
        let mut ws = Vec::new();
        let mut w = min;
        let count = ((max - min) / step).floor() as usize;
        for i in 0..=count {
            w = min + step * i as f64;
            ws.push(w);
        }
        if w < max - WIDTH_DEDUP_TOL {
            ws.push(max);
        }
        Self::from_widths(ws)
    }

    /// The coarse library RIP uses for its initial DP pass (Section 6):
    /// five widths `{80u, 160u, 240u, 320u, 400u}`.
    pub fn paper_coarse() -> Self {
        Self::uniform(80.0, 80.0, 5).expect("paper constants are valid")
    }

    /// Builds the design-specific library `B` of RIP's Line 3 (Fig. 6):
    /// each analytically refined width is rounded to the nearest multiple
    /// of `grid` (10u in the paper) and the results are deduplicated.
    ///
    /// Widths that round to zero are clamped up to one `grid` step, keeping
    /// every refined repeater representable.
    ///
    /// # Errors
    ///
    /// Returns an error if `grid` is not strictly positive or the refined
    /// width collection is empty/invalid.
    pub fn from_refined_widths(
        refined: impl IntoIterator<Item = f64>,
        grid: f64,
    ) -> Result<Self, TechError> {
        ensure_positive("width rounding grid", grid)?;
        let rounded: Vec<f64> = refined
            .into_iter()
            .map(|w| round_to_grid(w, grid))
            .collect();
        Self::from_widths(rounded)
    }

    /// The allowed widths, sorted ascending, in units of `u`.
    #[inline]
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    /// Number of distinct widths in the library.
    #[inline]
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// Returns `true` if the library is empty (never true for a
    /// successfully constructed library; provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.widths.is_empty()
    }

    /// Smallest width in the library, in u.
    #[inline]
    pub fn min_width(&self) -> f64 {
        *self.widths.first().expect("library is never empty")
    }

    /// Largest width in the library, in u.
    #[inline]
    pub fn max_width(&self) -> f64 {
        *self.widths.last().expect("library is never empty")
    }

    /// Returns the library width closest to `w` (ties resolve to the
    /// smaller width).
    ///
    /// # Examples
    ///
    /// ```
    /// # use rip_tech::RepeaterLibrary;
    /// let lib = RepeaterLibrary::uniform(10.0, 10.0, 10).unwrap();
    /// assert_eq!(lib.nearest(37.0), 40.0);
    /// assert_eq!(lib.nearest(35.0), 30.0); // tie goes down
    /// assert_eq!(lib.nearest(1000.0), 100.0);
    /// ```
    pub fn nearest(&self, w: f64) -> f64 {
        let idx = match self
            .widths
            .binary_search_by(|probe| probe.partial_cmp(&w).expect("finite widths"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) if i == self.widths.len() => i - 1,
            Err(i) => {
                let below = self.widths[i - 1];
                let above = self.widths[i];
                if (w - below) <= (above - w) {
                    i - 1
                } else {
                    i
                }
            }
        };
        self.widths[idx]
    }

    /// Returns an iterator over the allowed widths, ascending.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.widths.iter()
    }
}

impl<'a> IntoIterator for &'a RepeaterLibrary {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.widths.iter()
    }
}

/// Rounds `w` to the nearest strictly positive multiple of `grid`.
///
/// This is the rounding rule of RIP's Line 3 (Fig. 6): refined continuous
/// widths snap to the discrete layout grid (10u in the paper). Values that
/// would round to zero are clamped up to `grid`.
///
/// # Examples
///
/// ```
/// use rip_tech::round_to_grid;
///
/// assert_eq!(round_to_grid(87.3, 10.0), 90.0);
/// assert_eq!(round_to_grid(84.9, 10.0), 80.0);
/// assert_eq!(round_to_grid(2.0, 10.0), 10.0); // clamped, never zero
/// ```
pub fn round_to_grid(w: f64, grid: f64) -> f64 {
    let snapped = (w / grid).round() * grid;
    if snapped < grid {
        grid
    } else {
        snapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_paper_baseline() {
        let lib = RepeaterLibrary::uniform(10.0, 20.0, 10).unwrap();
        assert_eq!(lib.len(), 10);
        assert_eq!(lib.min_width(), 10.0);
        assert_eq!(lib.max_width(), 190.0);
    }

    #[test]
    fn paper_coarse_is_five_wide_steps() {
        let lib = RepeaterLibrary::paper_coarse();
        assert_eq!(lib.widths(), &[80.0, 160.0, 240.0, 320.0, 400.0]);
    }

    #[test]
    fn range_step_includes_endpoint() {
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        assert_eq!(lib.min_width(), 10.0);
        assert_eq!(lib.max_width(), 400.0);
        // 10, 50, ..., 370 is 10 entries; 400 appended as endpoint.
        assert_eq!(lib.len(), 11);
    }

    #[test]
    fn range_step_exact_fit_has_no_duplicate_endpoint() {
        let lib = RepeaterLibrary::range_step(10.0, 100.0, 30.0).unwrap();
        assert_eq!(lib.widths(), &[10.0, 40.0, 70.0, 100.0]);
    }

    #[test]
    fn from_widths_sorts_and_dedups() {
        let lib = RepeaterLibrary::from_widths([40.0, 10.0, 40.0, 20.0]).unwrap();
        assert_eq!(lib.widths(), &[10.0, 20.0, 40.0]);
    }

    #[test]
    fn from_refined_widths_rounds_and_dedups() {
        // Three repeaters refined to nearly equal widths collapse into a
        // tiny library - the essence of RIP's Line 3.
        let lib = RepeaterLibrary::from_refined_widths([91.2, 88.7, 93.0, 152.1], 10.0).unwrap();
        assert_eq!(lib.widths(), &[90.0, 150.0]);
    }

    #[test]
    fn nearest_picks_closest() {
        let lib = RepeaterLibrary::from_widths([10.0, 50.0, 100.0]).unwrap();
        assert_eq!(lib.nearest(5.0), 10.0);
        assert_eq!(lib.nearest(29.0), 10.0);
        assert_eq!(lib.nearest(31.0), 50.0);
        assert_eq!(lib.nearest(80.0), 100.0);
        assert_eq!(lib.nearest(500.0), 100.0);
        assert_eq!(lib.nearest(50.0), 50.0);
    }

    #[test]
    fn round_to_grid_clamps_to_grid() {
        assert_eq!(round_to_grid(0.1, 10.0), 10.0);
        assert_eq!(round_to_grid(14.9, 10.0), 10.0);
        assert_eq!(round_to_grid(15.0, 10.0), 20.0);
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(RepeaterLibrary::from_widths(std::iter::empty()).is_err());
        assert!(RepeaterLibrary::from_widths([1.0, -2.0]).is_err());
        assert!(RepeaterLibrary::uniform(10.0, 10.0, 0).is_err());
        assert!(RepeaterLibrary::range_step(100.0, 10.0, 10.0).is_err());
    }

    #[test]
    fn iteration_is_ascending() {
        let lib = RepeaterLibrary::uniform(10.0, 10.0, 5).unwrap();
        let collected: Vec<f64> = lib.iter().copied().collect();
        let mut sorted = collected.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(collected, sorted);
        // &lib into-iterator agrees with iter().
        let via_ref: Vec<f64> = (&lib).into_iter().copied().collect();
        assert_eq!(via_ref, collected);
    }
}
