//! Repeater power model (Section 4.1, Eqs. 3–4 of the paper).
//!
//! Short-circuit power is neglected (following [5] in the paper); total
//! repeater power is dynamic + leakage:
//!
//! ```text
//! P = α · V²dd · f · C_total_load + Σᵢ β · wᵢ           (Eq. 3)
//!   = c + γ · Σᵢ wᵢ                                      (Eq. 4)
//! ```
//!
//! where `C_total_load` is linear in the total repeater width (each
//! repeater's gate cap is `Co · wᵢ`), so minimizing repeater power is
//! equivalent to minimizing the **total repeater width** `p = Σ wᵢ`.
//! The constant `c` collects the wire and receiver capacitance switching
//! power, which repeater insertion cannot change.

use crate::device::RepeaterDevice;
use crate::error::{ensure_non_negative, ensure_positive, ensure_unit_range, TechError};
use crate::units::FARAD_PER_FF;

/// Parameters of the dynamic + leakage power model.
///
/// # Examples
///
/// ```
/// use rip_tech::{PowerParams, RepeaterDevice};
///
/// # fn main() -> Result<(), rip_tech::TechError> {
/// let dev = RepeaterDevice::new(6000.0, 1.8, 1.4)?;
/// let power = PowerParams::new(1.8, 500.0e6, 0.15, 20.0e-9)?;
/// // gamma is the power cost per unit of repeater width (W/u): Eq. (4).
/// let gamma = power.gamma(&dev);
/// assert!(gamma > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    vdd: f64,
    freq: f64,
    activity: f64,
    leak_per_width: f64,
}

impl PowerParams {
    /// Creates a power model.
    ///
    /// * `vdd` — supply voltage, in V.
    /// * `freq` — clock frequency, in Hz.
    /// * `activity` — switching activity factor `α` in `[0, 1]`.
    /// * `leak_per_width` — leakage power per unit repeater width `β`,
    ///   in W/u.
    ///
    /// # Errors
    ///
    /// Returns an error if `vdd` or `freq` is not strictly positive,
    /// `activity` is outside `[0, 1]`, or `leak_per_width` is negative.
    pub fn new(vdd: f64, freq: f64, activity: f64, leak_per_width: f64) -> Result<Self, TechError> {
        Ok(Self {
            vdd: ensure_positive("supply voltage vdd", vdd)?,
            freq: ensure_positive("clock frequency", freq)?,
            activity: ensure_unit_range("switching activity", activity)?,
            leak_per_width: ensure_non_negative("leakage per width", leak_per_width)?,
        })
    }

    /// Supply voltage, in V.
    #[inline]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Clock frequency, in Hz.
    #[inline]
    pub fn freq(&self) -> f64 {
        self.freq
    }

    /// Switching activity factor `α`.
    #[inline]
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Leakage power per unit repeater width `β`, in W/u.
    #[inline]
    pub fn leak_per_width(&self) -> f64 {
        self.leak_per_width
    }

    /// Dynamic power of switching `cap_ff` femtofarads: `α·V²·f·C`, in W.
    #[inline]
    pub fn dynamic_power(&self, cap_ff: f64) -> f64 {
        self.activity * self.vdd * self.vdd * self.freq * cap_ff * FARAD_PER_FF
    }

    /// The per-unit-width power coefficient `γ` of Eq. (4), in W/u.
    ///
    /// `γ = α·V²·f·Co·(1 fF→F) + β`: each unit of repeater width adds
    /// `Co` fF of switched gate capacitance plus `β` of leakage.
    #[inline]
    pub fn gamma(&self, device: &RepeaterDevice) -> f64 {
        self.dynamic_power(device.co()) + self.leak_per_width
    }

    /// Total repeater power for a given total width `Σwᵢ` (Eq. 4, the
    /// width-dependent part): `γ · Σw`, in W.
    ///
    /// The constant `c` of Eq. (4) — switching of the wire and receiver
    /// capacitance — is independent of the repeater solution; obtain it
    /// from [`PowerParams::dynamic_power`] with the wire capacitance when
    /// reporting absolute net power.
    #[inline]
    pub fn repeater_power(&self, device: &RepeaterDevice, total_width: f64) -> f64 {
        self.gamma(device) * total_width
    }

    /// Absolute power of a repeatered net: repeater power plus the constant
    /// wire + receiver switching term, in W.
    #[inline]
    pub fn net_power(&self, device: &RepeaterDevice, total_width: f64, wire_cap_ff: f64) -> f64 {
        self.repeater_power(device, total_width) + self.dynamic_power(wire_cap_ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> RepeaterDevice {
        RepeaterDevice::new(6000.0, 1.8, 1.4).unwrap()
    }

    fn params() -> PowerParams {
        PowerParams::new(1.8, 500.0e6, 0.15, 20.0e-9).unwrap()
    }

    #[test]
    fn power_is_linear_in_total_width() {
        // This linearity is exactly why Eq. (4) reduces power minimization
        // to total-width minimization.
        let p = params();
        let d = dev();
        let p100 = p.repeater_power(&d, 100.0);
        let p200 = p.repeater_power(&d, 200.0);
        assert!((p200 - 2.0 * p100).abs() < 1e-18);
    }

    #[test]
    fn gamma_combines_dynamic_and_leakage() {
        let p = params();
        let d = dev();
        let dynamic_only = PowerParams::new(1.8, 500.0e6, 0.15, 0.0).unwrap();
        assert!(p.gamma(&d) > dynamic_only.gamma(&d));
        assert!((p.gamma(&d) - dynamic_only.gamma(&d) - 20.0e-9).abs() < 1e-15);
    }

    #[test]
    fn dynamic_power_magnitude_is_plausible() {
        // 2000 fF of wire at 500 MHz, alpha=0.15, 1.8 V:
        // 0.15 * 3.24 * 5e8 * 2e-12 = ~0.5 mW.
        let p = params();
        let w = p.dynamic_power(2000.0);
        assert!(w > 1e-4 && w < 1e-2, "P = {w} W");
    }

    #[test]
    fn net_power_adds_constant_term() {
        let p = params();
        let d = dev();
        let with_wire = p.net_power(&d, 100.0, 1000.0);
        let repeaters_only = p.repeater_power(&d, 100.0);
        assert!(with_wire > repeaters_only);
        assert!((with_wire - repeaters_only - p.dynamic_power(1000.0)).abs() < 1e-18);
    }

    #[test]
    fn zero_leakage_is_allowed() {
        assert!(PowerParams::new(1.8, 1e9, 0.2, 0.0).is_ok());
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PowerParams::new(0.0, 1e9, 0.2, 0.0).is_err());
        assert!(PowerParams::new(1.8, -1.0, 0.2, 0.0).is_err());
        assert!(PowerParams::new(1.8, 1e9, 1.5, 0.0).is_err());
        assert!(PowerParams::new(1.8, 1e9, 0.2, -1e-9).is_err());
    }
}
