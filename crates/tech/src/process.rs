//! Complete technology descriptions bundling device, wire and power models.

use crate::device::RepeaterDevice;
use crate::error::TechError;
use crate::power::PowerParams;
use crate::wire::WireLayer;

/// A process technology: the repeater device model, the available routing
/// layers, and the power-model parameters.
///
/// The paper evaluates on an (unnamed) 0.18 µm process with global nets on
/// metal4/metal5; [`Technology::generic_180nm`] is the synthetic equivalent
/// used throughout this reproduction (see DESIGN.md §2).
///
/// # Examples
///
/// ```
/// use rip_tech::Technology;
///
/// let tech = Technology::generic_180nm();
/// assert_eq!(tech.layers().len(), 2);
/// assert!(tech.device().rs() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    name: String,
    device: RepeaterDevice,
    layers: Vec<WireLayer>,
    power: PowerParams,
}

impl Technology {
    /// Creates a technology from its constituent models.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Empty`] if `layers` is empty.
    pub fn new(
        name: impl Into<String>,
        device: RepeaterDevice,
        layers: Vec<WireLayer>,
        power: PowerParams,
    ) -> Result<Self, TechError> {
        if layers.is_empty() {
            return Err(TechError::Empty {
                what: "technology layer list",
            });
        }
        Ok(Self {
            name: name.into(),
            device,
            layers,
            power,
        })
    }

    /// Synthetic 0.18 µm technology used for all paper-reproduction
    /// experiments.
    ///
    /// Parameter choices (all in the published range for 180 nm; the
    /// reference width `u` is the paper's "minimal repeater width"):
    ///
    /// * unit repeater: `Rs = 9 kΩ·u`, `Co = 0.43 fF/u`, `Cp = 0.35 fF/u`;
    /// * metal4: 0.080 Ω/µm, 0.200 fF/µm; metal5: 0.060 Ω/µm, 0.180 fF/µm;
    /// * power: 1.8 V, 500 MHz, activity 0.15, leakage 20 nW/u.
    ///
    /// Calibration rationale (DESIGN.md §2): the classic uniform-wire
    /// optimal repeater width comes out ≈ 230u — inside the paper's fine
    /// library range (10u, 400u) but **well above** the Table 1 baseline
    /// library's 100u ceiling at `g = 10u`, which is what produces the
    /// paper's zone-I timing violations (`V_DP`); the optimal spacing is
    /// ≈ 0.9 mm, giving the paper's 4–25 mm nets a realistic 4–25
    /// repeaters.
    pub fn generic_180nm() -> Self {
        let device = RepeaterDevice::new(9000.0, 0.43, 0.35).expect("preset constants");
        let layers = vec![WireLayer::metal4_180nm(), WireLayer::metal5_180nm()];
        let power = PowerParams::new(1.8, 500.0e6, 0.15, 20.0e-9).expect("preset constants");
        Self::new("generic-180nm", device, layers, power).expect("preset layers non-empty")
    }

    /// Technology name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit-width repeater device model.
    #[inline]
    pub fn device(&self) -> &RepeaterDevice {
        &self.device
    }

    /// The available routing layers.
    #[inline]
    pub fn layers(&self) -> &[WireLayer] {
        &self.layers
    }

    /// Looks up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&WireLayer> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// The power-model parameters.
    #[inline]
    pub fn power(&self) -> &PowerParams {
        &self.power
    }

    /// Returns a copy with a different device model (builder-style).
    #[must_use]
    pub fn with_device(mut self, device: RepeaterDevice) -> Self {
        self.device = device;
        self
    }

    /// Returns a copy with different power parameters (builder-style).
    #[must_use]
    pub fn with_power(mut self, power: PowerParams) -> Self {
        self.power = power;
        self
    }
}

impl Default for Technology {
    /// The default technology is [`Technology::generic_180nm`], matching
    /// the paper's experimental setup.
    fn default() -> Self {
        Self::generic_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_has_two_global_layers() {
        let t = Technology::generic_180nm();
        assert!(t.layer("metal4").is_some());
        assert!(t.layer("metal5").is_some());
        assert!(t.layer("metal6").is_none());
    }

    #[test]
    fn default_is_the_paper_preset() {
        assert_eq!(Technology::default(), Technology::generic_180nm());
    }

    #[test]
    fn preset_optimum_matches_paper_library_scale() {
        // Cross-check the calibration described in DESIGN.md §2: the
        // classical optimal width must lie inside the paper's fine
        // library range (10u, 400u) but clearly above the 100u ceiling of
        // the Table 1 baseline library at g = 10u - that gap is what
        // reproduces the paper's zone-I timing violations.
        let t = Technology::generic_180nm();
        let m4 = t.layer("metal4").unwrap();
        let w_opt = t
            .device()
            .optimal_width_uniform(m4.r_per_um(), m4.c_per_um());
        assert!(w_opt > 150.0 && w_opt < 400.0, "w_opt = {w_opt}");
        let l_opt = t
            .device()
            .optimal_spacing_uniform(m4.r_per_um(), m4.c_per_um());
        assert!(l_opt > 500.0 && l_opt < 2000.0, "l_opt = {l_opt}");
    }

    #[test]
    fn rejects_empty_layer_list() {
        let t = Technology::generic_180nm();
        let result = Technology::new("x", *t.device(), vec![], *t.power());
        assert!(result.is_err());
    }

    #[test]
    fn builder_style_updates() {
        let t = Technology::generic_180nm();
        let fast = RepeaterDevice::new(3000.0, 1.8, 1.4).unwrap();
        let t2 = t.clone().with_device(fast);
        assert_eq!(t2.device().rs(), 3000.0);
        assert_eq!(t2.layers(), t.layers());
    }
}
