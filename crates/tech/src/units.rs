//! Unit conventions and conversion helpers.
//!
//! The whole workspace uses one consistent internal unit system chosen so
//! that Elmore delays come out of resistance × capacitance products without
//! any scaling factors:
//!
//! | Quantity    | Unit | Notes |
//! |-------------|------|-------|
//! | length      | µm   | wire segment lengths, repeater positions |
//! | resistance  | Ω    | device output resistance, wire resistance |
//! | capacitance | fF   | device pin caps, wire capacitance |
//! | time        | fs   | 1 Ω · 1 fF = 10⁻¹⁵ s = 1 fs |
//! | width       | u    | multiples of the minimum repeater width |
//! | power       | W    | reported absolute power |
//!
//! Times are converted to ns only at display boundaries via
//! [`ns_from_fs`]/[`fs_from_ns`].

/// Femtoseconds per nanosecond (10⁶).
pub const FS_PER_NS: f64 = 1.0e6;

/// Femtoseconds per picosecond (10³).
pub const FS_PER_PS: f64 = 1.0e3;

/// Farads per femtofarad (10⁻¹⁵).
pub const FARAD_PER_FF: f64 = 1.0e-15;

/// Seconds per femtosecond (10⁻¹⁵).
pub const SECOND_PER_FS: f64 = 1.0e-15;

/// Micrometres per millimetre (10³).
pub const UM_PER_MM: f64 = 1.0e3;

/// Converts a time in femtoseconds (the internal unit) to nanoseconds.
///
/// # Examples
///
/// ```
/// assert_eq!(rip_tech::units::ns_from_fs(2.5e6), 2.5);
/// ```
#[inline]
pub fn ns_from_fs(fs: f64) -> f64 {
    fs / FS_PER_NS
}

/// Converts a time in nanoseconds to femtoseconds (the internal unit).
///
/// # Examples
///
/// ```
/// assert_eq!(rip_tech::units::fs_from_ns(1.5), 1.5e6);
/// ```
#[inline]
pub fn fs_from_ns(ns: f64) -> f64 {
    ns * FS_PER_NS
}

/// Converts a time in femtoseconds to picoseconds.
#[inline]
pub fn ps_from_fs(fs: f64) -> f64 {
    fs / FS_PER_PS
}

/// Converts a capacitance in femtofarads to farads.
#[inline]
pub fn farad_from_ff(ff: f64) -> f64 {
    ff * FARAD_PER_FF
}

/// Converts a length in micrometres to millimetres.
#[inline]
pub fn mm_from_um(um: f64) -> f64 {
    um / UM_PER_MM
}

/// Relative tolerance used when comparing physical quantities that went
/// through different but algebraically equivalent computations (e.g. the
/// π-ladder Elmore sum vs. the closed-form prefix integrals).
pub const REL_TOL: f64 = 1.0e-9;

/// Returns `true` when `a` and `b` are equal within [`REL_TOL`] relative
/// tolerance (with an absolute floor for values near zero).
///
/// # Examples
///
/// ```
/// assert!(rip_tech::units::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!rip_tech::units::approx_eq(1.0, 1.01));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, REL_TOL)
}

/// Returns `true` when `a` and `b` are equal within the given relative
/// tolerance (with the same tolerance used as an absolute floor near zero).
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        let t_ns = 3.7;
        assert!((ns_from_fs(fs_from_ns(t_ns)) - t_ns).abs() < 1e-12);
    }

    #[test]
    fn one_ohm_times_one_ff_is_one_fs() {
        // The invariant that motivates the unit system: R [Ω] * C [fF]
        // directly yields fs, i.e. 1e-15 s.
        let r_ohm = 1.0;
        let c_ff = 1.0;
        let tau_fs = r_ohm * c_ff;
        assert!((tau_fs * SECOND_PER_FS - 1e-15).abs() < 1e-30);
    }

    #[test]
    fn ps_conversion() {
        assert_eq!(ps_from_fs(1500.0), 1.5);
    }

    #[test]
    fn farad_conversion() {
        assert!((farad_from_ff(250.0) - 2.5e-13).abs() < 1e-25);
    }

    #[test]
    fn mm_conversion() {
        assert_eq!(mm_from_um(12_000.0), 12.0);
    }

    #[test]
    fn approx_eq_handles_zero_neighbourhood() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-10)));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn approx_eq_tol_is_scale_aware() {
        assert!(approx_eq_tol(1000.0, 1001.0, 1e-2));
        assert!(!approx_eq_tol(1000.0, 1020.0, 1e-2));
    }
}
