//! Wire layer models: per-unit-length RC characteristics of routing layers.
//!
//! The paper routes its global nets on metal4 and metal5 of a 0.18 µm
//! process. The presets here use synthetic-but-realistic values for such a
//! process (global layers: tens of mΩ/µm, ~0.2 fF/µm); see DESIGN.md §2 for
//! the substitution rationale.

use crate::error::{ensure_positive, TechError};

/// Per-unit-length electrical model of a routing layer.
///
/// # Examples
///
/// ```
/// use rip_tech::WireLayer;
///
/// let m4 = WireLayer::metal4_180nm();
/// // Resistance of a 1 mm wire on metal4, in Ω.
/// let r = m4.r_per_um() * 1000.0;
/// assert!(r > 10.0 && r < 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WireLayer {
    name: String,
    r_per_um: f64,
    c_per_um: f64,
}

impl WireLayer {
    /// Creates a wire layer model.
    ///
    /// * `name` — layer name (e.g. `"metal4"`).
    /// * `r_per_um` — resistance per micrometre, in Ω/µm.
    /// * `c_per_um` — capacitance per micrometre, in fF/µm.
    ///
    /// # Errors
    ///
    /// Returns an error if either electrical parameter is not strictly
    /// positive and finite.
    pub fn new(name: impl Into<String>, r_per_um: f64, c_per_um: f64) -> Result<Self, TechError> {
        Ok(Self {
            name: name.into(),
            r_per_um: ensure_positive("wire resistance per um", r_per_um)?,
            c_per_um: ensure_positive("wire capacitance per um", c_per_um)?,
        })
    }

    /// Synthetic metal4 model for a generic 0.18 µm process.
    ///
    /// Slightly more resistive and capacitive than metal5, as is typical
    /// for the lower of two global routing layers.
    pub fn metal4_180nm() -> Self {
        Self::new("metal4", 0.080, 0.200).expect("preset constants are valid")
    }

    /// Synthetic metal5 model for a generic 0.18 µm process.
    pub fn metal5_180nm() -> Self {
        Self::new("metal5", 0.060, 0.180).expect("preset constants are valid")
    }

    /// Layer name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resistance per micrometre, in Ω/µm.
    #[inline]
    pub fn r_per_um(&self) -> f64 {
        self.r_per_um
    }

    /// Capacitance per micrometre, in fF/µm.
    #[inline]
    pub fn c_per_um(&self) -> f64 {
        self.c_per_um
    }

    /// Total resistance of `length_um` micrometres of this layer, in Ω.
    #[inline]
    pub fn resistance(&self, length_um: f64) -> f64 {
        self.r_per_um * length_um
    }

    /// Total capacitance of `length_um` micrometres of this layer, in fF.
    #[inline]
    pub fn capacitance(&self, length_um: f64) -> f64 {
        self.c_per_um * length_um
    }

    /// Intrinsic distributed RC delay of an *unbuffered* wire of the given
    /// length on this layer: `r·c·L²/2`, in fs.
    ///
    /// Useful as a scale anchor: repeater insertion exists precisely
    /// because this quantity grows quadratically with length.
    #[inline]
    pub fn unbuffered_delay(&self, length_um: f64) -> f64 {
        0.5 * self.r_per_um * self.c_per_um * length_um * length_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_as_expected() {
        let m4 = WireLayer::metal4_180nm();
        let m5 = WireLayer::metal5_180nm();
        assert!(m4.r_per_um() > m5.r_per_um());
        assert!(m4.c_per_um() > m5.c_per_um());
        assert_eq!(m4.name(), "metal4");
        assert_eq!(m5.name(), "metal5");
    }

    #[test]
    fn lumped_quantities_scale_linearly() {
        let m4 = WireLayer::metal4_180nm();
        assert!((m4.resistance(2000.0) - 2.0 * m4.resistance(1000.0)).abs() < 1e-12);
        assert!((m4.capacitance(2000.0) - 2.0 * m4.capacitance(1000.0)).abs() < 1e-12);
    }

    #[test]
    fn unbuffered_delay_is_quadratic() {
        let m4 = WireLayer::metal4_180nm();
        let d1 = m4.unbuffered_delay(1000.0);
        let d2 = m4.unbuffered_delay(2000.0);
        assert!((d2 / d1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ten_mm_unbuffered_delay_is_nanoseconds_scale() {
        // 10 mm of metal4: 0.5 * 0.08 * 0.2 * (1e4)^2 = 8e5 fs = 0.8 ns.
        let m4 = WireLayer::metal4_180nm();
        let d_ns = rip_tech_units_ns(m4.unbuffered_delay(10_000.0));
        assert!(d_ns > 0.1 && d_ns < 10.0, "d = {d_ns} ns");
    }

    fn rip_tech_units_ns(fs: f64) -> f64 {
        crate::units::ns_from_fs(fs)
    }

    #[test]
    fn rejects_invalid_rc() {
        assert!(WireLayer::new("m", 0.0, 0.2).is_err());
        assert!(WireLayer::new("m", 0.08, -0.2).is_err());
    }
}
