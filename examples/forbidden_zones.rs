//! Forbidden zones: how macro-blocks shape a repeater solution.
//!
//! Builds the same physical net twice - once unobstructed, once with a
//! 40% macro-block in the middle - and compares the RIP solutions.
//!
//! Run with: `cargo run -p rip-core --release --example forbidden_zones`

use rip_core::prelude::*;
use rip_tech::units::ns_from_fs;

fn build_net(zone: Option<(f64, f64)>) -> Result<TwoPinNet, Box<dyn std::error::Error>> {
    let tech = Technology::generic_180nm();
    let m4 = tech.layer("metal4").expect("preset layer").clone();
    let m5 = tech.layer("metal5").expect("preset layer").clone();
    let builder = NetBuilder::new()
        .segment_on(&m4, 4000.0)
        .segment_on(&m5, 4000.0)
        .segment_on(&m4, 4000.0)
        .driver_width(140.0)
        .receiver_width(60.0);
    let builder = match zone {
        Some((s, e)) => builder.forbidden_zone(s, e)?,
        None => builder,
    };
    Ok(builder.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::generic_180nm();
    let open = build_net(None)?;
    // A zone covering 40% of the net, right where repeaters want to be.
    let blocked = build_net(Some((3600.0, 8400.0)))?;

    let t_min = tau_min_paper(&blocked, tech.device());
    let target = 1.25 * t_min;
    println!(
        "target = {:.3} ns (1.25 x tau_min of the blocked net)\n",
        ns_from_fs(target)
    );

    for (name, net) in [("unobstructed", &open), ("40% macro-block", &blocked)] {
        let outcome = rip(net, &tech, target, &RipConfig::paper())?;
        let sol = &outcome.solution;
        println!("{name}:");
        for r in sol.assignment.repeaters() {
            let marker = if net.zones().iter().any(|z| {
                (r.position - z.start()).abs() < 1e-6 || (r.position - z.end()).abs() < 1e-6
            }) {
                "  <- pushed to the zone boundary"
            } else {
                ""
            };
            println!(
                "  x = {:7.1} um   w = {:5.0} u{marker}",
                r.position, r.width
            );
        }
        // Solutions are always legal: never inside a zone.
        sol.assignment.validate_on(net)?;
        println!(
            "  delay {:.3} ns, total width {:.0} u\n",
            ns_from_fs(sol.delay_fs),
            sol.total_width,
        );
    }

    println!("note: the blocked net needs more total width - repeaters cannot sit");
    println!("at their electrically ideal positions, so the sizing compensates.");
    Ok(())
}
