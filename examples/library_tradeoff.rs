//! Library granularity vs quality vs runtime: the tradeoff of Table 2.
//!
//! Runs the DP baseline over the fixed width range (10u, 400u) at
//! granularities 40u -> 10u and compares power + runtime against one RIP
//! run. Use --release or the runtimes mean nothing.
//!
//! Run with: `cargo run -p rip-core --release --example library_tradeoff`

use rip_core::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::generic_180nm();
    let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 7)?;
    let net = gen.generate();
    let t_min = tau_min_paper(&net, tech.device());
    let target = 1.5 * t_min;

    let t0 = Instant::now();
    let rip_sol = rip(&net, &tech, target, &RipConfig::paper())?;
    let rip_time = t0.elapsed();
    println!(
        "RIP:        width {:6.0} u   runtime {:9.3} ms   (library synthesized: {} widths)",
        rip_sol.solution.total_width,
        rip_time.as_secs_f64() * 1e3,
        rip_sol.library.as_ref().map_or(0, |l| l.len()),
    );

    for g in [40.0, 30.0, 20.0, 10.0] {
        let config = BaselineConfig::paper_table2(g);
        let t0 = Instant::now();
        let sol = baseline_dp(&net, tech.device(), &config, target)?;
        let elapsed = t0.elapsed();
        let saving = power_saving_percent(sol.total_width, rip_sol.solution.total_width);
        println!(
            "DP g={g:>2.0}u:   width {:6.0} u   runtime {:9.3} ms   (RIP saves {saving:5.1}%, speedup {:5.1}x)",
            sol.total_width,
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() / rip_time.as_secs_f64(),
        );
    }
    println!("\nthe paper's Table 2 shape: finer g closes the power gap but runtime");
    println!("explodes; RIP gets the fine-granularity power at coarse-granularity cost.");
    Ok(())
}
