//! Power vs timing budget: the tradeoff curve behind Figure 7.
//!
//! Sweeps the timing target from 1.05 to 2.05 x tau_min on one random
//! paper-distribution net and prints RIP's power next to the DP baseline
//! at two library granularities.
//!
//! Run with: `cargo run -p rip-core --release --example power_sweep`

use rip_core::prelude::*;
use rip_tech::units::ns_from_fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::generic_180nm();
    let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 42)?;
    let net = gen.generate();
    let t_min = tau_min_paper(&net, tech.device());
    println!(
        "net: {:.1} mm, {} segments, zone fraction {:.0}%, tau_min = {:.3} ns\n",
        net.total_length() / 1000.0,
        net.segments().len(),
        net.forbidden_fraction() * 100.0,
        ns_from_fs(t_min),
    );

    let g10 = BaselineConfig::paper_table1(10.0); // widths 10..100u
    let g40 = BaselineConfig::paper_table1(40.0); // widths 10..370u
    println!("target        RIP width   DP g=10u      DP g=40u");
    println!("---------------------------------------------------");
    for k in 0..=10 {
        let mult = 1.05 + k as f64 * 0.1;
        let target = t_min * mult;
        let rip_sol = rip(&net, &tech, target, &RipConfig::paper())?;
        let fmt = |r: Result<DpSolution, _>| match r {
            Ok(sol) => format!("{:8.0} u", sol.total_width),
            Err(_) => "VIOLATED  ".to_string(),
        };
        println!(
            "{:.2}xtau_min {:8.0} u   {}   {}",
            mult,
            rip_sol.solution.total_width,
            fmt(baseline_dp(&net, tech.device(), &g10, target)),
            fmt(baseline_dp(&net, tech.device(), &g40, target)),
        );
    }
    println!("\nzone I: tight targets where the g=10u library (max 100u) fails;");
    println!("zone III: loose targets where its small widths reach parity with RIP.");
    Ok(())
}
