//! Quickstart: insert power-optimal repeaters into a routed two-pin net.
//!
//! Run with: `cargo run -p rip-core --release --example quickstart`

use rip_core::prelude::*;
use rip_tech::units::ns_from_fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The synthetic 0.18 um technology used throughout the reproduction.
    let tech = Technology::generic_180nm();
    let m4 = tech.layer("metal4").expect("preset layer").clone();
    let m5 = tech.layer("metal5").expect("preset layer").clone();

    // A 12.5 mm global net as a router would hand it to us: alternating
    // metal4/metal5 segments and a 3 mm macro-block the net crosses
    // (no repeaters allowed inside).
    let net = NetBuilder::new()
        .segment_on(&m4, 3000.0)
        .segment_on(&m5, 4500.0)
        .segment_on(&m4, 2500.0)
        .segment_on(&m5, 2500.0)
        .forbidden_zone(5000.0, 8000.0)?
        .driver_width(140.0)
        .receiver_width(60.0)
        .build()?;

    // Timing budget: 30% above the fastest achievable delay.
    let t_min = tau_min_paper(&net, tech.device());
    let target = 1.3 * t_min;
    println!(
        "net: {:.1} mm, tau_min = {:.3} ns, target = {:.3} ns",
        net.total_length() / 1000.0,
        ns_from_fs(t_min),
        ns_from_fs(target),
    );

    // Run the hybrid RIP pipeline (Fig. 6 of the paper).
    let outcome = rip(&net, &tech, target, &RipConfig::paper())?;
    let solution = &outcome.solution;

    println!("\nRIP solution ({} repeaters):", solution.assignment.len());
    for r in solution.assignment.repeaters() {
        println!("  x = {:7.1} um   width = {:5.0} u", r.position, r.width);
    }
    println!(
        "\ndelay  = {:.3} ns (target {:.3} ns)",
        ns_from_fs(solution.delay_fs),
        ns_from_fs(target),
    );
    println!(
        "total repeater width = {:.0} u (the Eq. 4 power objective)",
        solution.total_width
    );

    let power =
        rip_delay::assignment_power(&net, tech.device(), tech.power(), &solution.assignment);
    println!(
        "absolute power: repeaters {:.3} mW + wire {:.3} mW = {:.3} mW",
        power.repeater * 1e3,
        power.wire * 1e3,
        power.total() * 1e3,
    );

    // How the pipeline got there:
    println!(
        "\npipeline: coarse DP {:.0} u  ->  REFINE  ->  fine DP {:.0} u",
        outcome.coarse.total_width, solution.total_width
    );
    if let Some(lib) = &outcome.library {
        println!("design-specific library: {:?} u", lib.widths());
    }
    println!(
        "stage runtimes: coarse {:?}, refine {:?}, fine {:?}",
        outcome.runtime.coarse, outcome.runtime.refine, outcome.runtime.fine,
    );
    Ok(())
}
