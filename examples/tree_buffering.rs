//! The tree extension (paper section 7): van Ginneken / Lillis buffering
//! and the full hybrid RIP pipeline on an RC *tree* - a multi-sink net
//! with one driver and three sinks behind a shared trunk.
//!
//! Run with: `cargo run -p rip-core --release --example tree_buffering`

use rip_core::{tree_rip, TreeRipConfig};
use rip_delay::RcTree;
use rip_dp::{tree_min_delay, tree_min_power};
use rip_tech::units::ns_from_fs;
use rip_tech::{RepeaterLibrary, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::generic_180nm();
    let dev = tech.device();

    // Build the tree with physical wire lengths (metal4 trunk, mixed
    // branches): driver - 4 mm trunk - branch point; one near sink, one
    // far branch that splits again into two sinks.
    let mut tree = RcTree::with_root();
    let trunk = tree.add_line_child(0, 0.08, 0.2, 4000.0)?;
    let near = tree.add_line_child(trunk, 0.08, 0.2, 750.0)?;
    let far = tree.add_line_child(trunk, 0.06, 0.18, 3500.0)?;
    let far_a = tree.add_line_child(far, 0.08, 0.2, 1000.0)?;
    let far_b = tree.add_line_child(far, 0.08, 0.2, 1500.0)?;
    tree.set_sink_cap(near, dev.input_cap(50.0))?;
    tree.set_sink_cap(far_a, dev.input_cap(50.0))?;
    tree.set_sink_cap(far_b, dev.input_cap(50.0))?;

    let driver_width = 140.0;
    let unbuffered = tree.elmore_delays(dev, driver_width);
    println!(
        "unbuffered worst sink delay: {:.3} ns",
        ns_from_fs(unbuffered.max_sink_delay)
    );

    // Candidate buffer sites come from subdividing the physical edges.
    let (sites, _) = tree.subdivided(200.0);
    let library = RepeaterLibrary::range_step(10.0, 400.0, 10.0)?;
    let fastest = tree_min_delay(&sites, dev, driver_width, &library, None)?;
    println!(
        "min-delay buffering:  {:.3} ns with total width {:.0} u",
        ns_from_fs(fastest.delay_fs),
        fastest.total_width,
    );

    // Power mode: meet 1.3x the minimum delay with the least total width.
    let target = 1.3 * fastest.delay_fs;
    let frugal = tree_min_power(&sites, dev, driver_width, &library, None, target)?;
    println!(
        "full-library power DP: {:.3} ns (target {:.3} ns), total width {:.0} u",
        ns_from_fs(frugal.delay_fs),
        ns_from_fs(target),
        frugal.total_width,
    );

    // The hybrid: coarse DP -> continuous width trim -> tiny synthesized
    // library -> fine windowed DP (mirrors Fig. 6 on trees).
    let hybrid = tree_rip(&tree, &tech, driver_width, target, &TreeRipConfig::paper())?;
    println!(
        "hybrid tree RIP:       {:.3} ns, total width {:.0} u (coarse seed {:.0} u, trim {:.1} u)",
        ns_from_fs(hybrid.solution.delay_fs),
        hybrid.solution.total_width,
        hybrid.coarse_width,
        hybrid.trimmed_width,
    );
    println!("synthesized library:   {:?} u", hybrid.library.widths());
    for (node, w) in hybrid.solution.buffer_widths.iter().enumerate() {
        if let Some(w) = w {
            println!(
                "  buffer {:.0} um from the root: {w:.0} u",
                hybrid.fine_tree.root_distance(node)
            );
        }
    }
    println!(
        "\npower mode saves {:.0}% of the repeater width by exploiting the slack",
        (1.0 - frugal.total_width / fastest.total_width) * 100.0,
    );
    Ok(())
}
