//! # rip — reproduction of "RIP: An Efficient Hybrid Repeater Insertion
//! Scheme for Low Power" (Liu, Peng & Papaefthymiou, DATE 2005)
//!
//! This meta-crate re-exports the workspace's public surface so
//! applications can depend on a single crate. See [`rip_core`] for the
//! pipeline documentation and the crate map in the repository README.
//!
//! ```
//! use rip::prelude::*;
//!
//! let tech = Technology::generic_180nm();
//! let _ = tech.device();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rip_core::{
    baseline_dp, power_saving_percent, rip, summarize_savings, tau_min, tau_min_paper, tree_rip,
    BaselineConfig, BatchTarget, Engine, EngineStats, RipConfig, RipError, RipOutcome,
    SavingsSummary, TreeRipConfig, TreeRipOutcome,
};

/// Convenient bulk imports, mirroring [`rip_core::prelude`].
pub mod prelude {
    pub use rip_core::prelude::*;
}
