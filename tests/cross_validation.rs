//! Cross-validation: independent implementations must agree.
//!
//! * chain DP vs the exhaustive brute-force oracle;
//! * tree DP vs chain DP on path-shaped trees;
//! * RC-profile interval algebra vs the paper's pi-ladder double sum;
//! * analytic sensitivities vs finite differences (random nets).

use rip_core::prelude::*;
use rip_delay::{evaluate, stage_delay, ChainView};
use rip_dp::{brute_min_delay, brute_min_power, solve_min_delay, solve_min_power};
use rip_net::Side;
use rip_tech::{RepeaterLibrary, Technology};

fn tech() -> Technology {
    Technology::generic_180nm()
}

#[test]
fn chain_dp_equals_brute_force_on_random_tiny_instances() {
    let tech = tech();
    let config = RandomNetConfig {
        segment_count: (2, 3),
        segment_length_um: (800.0, 1500.0),
        ..RandomNetConfig::default()
    };
    let nets = NetGenerator::suite(config, 31, 4).unwrap();
    let lib = RepeaterLibrary::from_widths([60.0, 160.0, 320.0]).unwrap();
    for net in &nets {
        // <= 5 candidates keeps brute force tractable: (3+1)^5 = 1024.
        let step = net.total_length() / 5.5;
        let cands = CandidateSet::uniform(net, step);
        assert!(cands.len() <= 5);

        let dp = solve_min_delay(net, tech.device(), &lib, &cands);
        let brute = brute_min_delay(net, tech.device(), &lib, &cands);
        assert!(
            (dp.delay_fs - brute.delay_fs).abs() < 1e-6,
            "min-delay mismatch: dp {} vs brute {}",
            dp.delay_fs,
            brute.delay_fs
        );

        for mult in [1.1, 1.5, 2.0] {
            let target = brute.delay_fs * mult;
            let dp = solve_min_power(net, tech.device(), &lib, &cands, target);
            let bf = brute_min_power(net, tech.device(), &lib, &cands, target);
            match (dp, bf) {
                (Ok(a), Ok(b)) => assert!(
                    (a.total_width - b.total_width).abs() < 1e-9,
                    "min-power mismatch at {mult}: dp {} vs brute {}",
                    a.total_width,
                    b.total_width
                ),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("feasibility disagreement at {mult}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn tree_dp_agrees_with_chain_dp_on_path_topologies() {
    let tech = tech();
    let nets = NetGenerator::suite(RandomNetConfig::default(), 33, 3).unwrap();
    let lib = RepeaterLibrary::from_widths([50.0, 120.0, 250.0]).unwrap();
    for net in &nets {
        let cands = CandidateSet::uniform(net, 1000.0);
        // Path tree mirroring the candidate structure.
        let mut tree = rip_delay::RcTree::with_root();
        let mut prev_pos = 0.0;
        let mut prev_node = 0;
        for &x in cands.positions() {
            let wire = net.profile().interval(prev_pos, x);
            prev_node = tree.add_child(prev_node, wire, 0.0).unwrap();
            prev_pos = x;
        }
        let wire = net.profile().interval(prev_pos, net.total_length());
        let sink = tree.add_child(prev_node, wire, 0.0).unwrap();
        tree.set_sink_cap(sink, tech.device().input_cap(net.receiver_width()))
            .unwrap();

        let chain = solve_min_delay(net, tech.device(), &lib, &cands);
        let tree_sol =
            rip_dp::tree_min_delay(&tree, tech.device(), net.driver_width(), &lib, None).unwrap();
        assert!(
            (chain.delay_fs - tree_sol.delay_fs).abs() < 1e-6,
            "path-tree min-delay mismatch: {} vs {}",
            chain.delay_fs,
            tree_sol.delay_fs
        );

        let target = chain.delay_fs * 1.5;
        let chain_p = solve_min_power(net, tech.device(), &lib, &cands, target).unwrap();
        let tree_p =
            rip_dp::tree_min_power(&tree, tech.device(), net.driver_width(), &lib, None, target)
                .unwrap();
        assert!(
            (chain_p.total_width - tree_p.total_width).abs() < 1e-9,
            "path-tree min-power mismatch: {} vs {}",
            chain_p.total_width,
            tree_p.total_width
        );
    }
}

#[test]
fn profile_interval_matches_pi_ladder_on_random_nets() {
    // Eq. (1)'s double sum computed naively over full segments must equal
    // the closed-form prefix-integral interval query.
    let nets = NetGenerator::suite(RandomNetConfig::default(), 35, 5).unwrap();
    for net in &nets {
        let mut ladder = 0.0;
        let segs = net.segments();
        for j in 0..segs.len() {
            let (lj, rj, cj) = (segs[j].length_um(), segs[j].r_per_um(), segs[j].c_per_um());
            let mut downstream = cj * lj / 2.0;
            for s in &segs[j + 1..] {
                downstream += s.capacitance();
            }
            ladder += rj * lj * downstream;
        }
        let iv = net.profile().interval(0.0, net.total_length());
        assert!(
            (iv.elmore - ladder).abs() <= 1e-9 * ladder,
            "profile {} vs ladder {}",
            iv.elmore,
            ladder
        );
    }
}

#[test]
fn stage_delay_composition_matches_full_evaluation_on_random_nets() {
    let tech = tech();
    let nets = NetGenerator::suite(RandomNetConfig::default(), 37, 3).unwrap();
    for net in &nets {
        let l = net.total_length();
        let positions = [0.31 * l, 0.54 * l, 0.78 * l];
        let widths = [90.0, 140.0, 70.0];
        let asg = RepeaterAssignment::new(
            positions
                .iter()
                .zip(&widths)
                .map(|(&x, &w)| Repeater::new(x, w))
                .collect(),
        )
        .unwrap();
        let timing = evaluate(net, tech.device(), &asg);
        // Manual Eq. (2) re-composition.
        let p = net.profile();
        let mut nodes = vec![(0.0, net.driver_width())];
        nodes.extend(positions.iter().zip(&widths).map(|(&x, &w)| (x, w)));
        nodes.push((l, net.receiver_width()));
        let mut manual = 0.0;
        for pair in nodes.windows(2) {
            let ((a, wa), (b, wb)) = (pair[0], pair[1]);
            manual += stage_delay(
                tech.device(),
                p.interval(a, b),
                wa,
                tech.device().input_cap(wb),
            );
        }
        assert!((timing.total_delay - manual).abs() < 1e-6);
    }
}

#[test]
fn analytic_derivatives_match_finite_differences_on_random_nets() {
    let tech = tech();
    let nets = NetGenerator::suite(RandomNetConfig::default(), 39, 3).unwrap();
    for net in &nets {
        let l = net.total_length();
        let positions: Vec<f64> = vec![0.27 * l, 0.52 * l, 0.81 * l];
        let widths = vec![110.0, 95.0, 150.0];
        let view = ChainView::new(net, tech.device(), positions.clone()).unwrap();

        // Width derivatives (Eq. 8 inner term) vs central differences.
        for j in 0..3 {
            let h = 1e-4;
            let analytic = view.dtau_dw(&widths, j);
            let mut up = widths.clone();
            up[j] += h;
            let mut dn = widths.clone();
            dn[j] -= h;
            let numeric = (view.total_delay(&up) - view.total_delay(&dn)) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() <= 1e-3 * numeric.abs().max(1.0),
                "dtau/dw mismatch at {j}: {analytic} vs {numeric}"
            );
        }

        // Location derivatives (Eqs. 17-18) vs one-sided differences.
        for j in 0..3 {
            let h = 0.5;
            for (side, sign) in [(Side::Downstream, 1.0), (Side::Upstream, -1.0)] {
                let analytic = view.dtau_dx(&widths, j, side);
                let mut moved = positions.clone();
                moved[j] += sign * h;
                let numeric = sign
                    * (view.with_positions(moved).unwrap().total_delay(&widths)
                        - view.total_delay(&widths))
                    / h;
                assert!(
                    (analytic - numeric).abs() <= 1e-2 * numeric.abs().max(1.0),
                    "dtau/dx mismatch at {j} ({side:?}): {analytic} vs {numeric}"
                );
            }
        }
    }
}
