//! End-to-end integration tests: the full RIP pipeline against the
//! Lillis-style DP baseline on paper-distribution nets.

use rip_core::prelude::*;
use rip_core::tau_min_paper;
use rip_delay::evaluate;
use rip_tech::Technology;

fn suite(seed: u64, count: usize) -> (Technology, Vec<TwoPinNet>) {
    let tech = Technology::generic_180nm();
    let nets = NetGenerator::suite(RandomNetConfig::default(), seed, count).unwrap();
    (tech, nets)
}

#[test]
fn rip_always_meets_paper_range_targets() {
    // The paper's headline robustness claim: "Our scheme always succeeded
    // in deriving solutions that satisfy the timing constraint."
    let (tech, nets) = suite(101, 4);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        for mult in [1.05, 1.35, 1.65, 2.05] {
            let target = tmin * mult;
            let out = rip(net, &tech, target, &RipConfig::paper())
                .unwrap_or_else(|e| panic!("RIP failed at {mult} x tau_min: {e}"));
            assert!(
                out.solution.meets(target),
                "delay {} exceeds target {target}",
                out.solution.delay_fs
            );
            out.solution.assignment.validate_on(net).unwrap();
        }
    }
}

#[test]
fn reported_metrics_match_ground_truth_evaluation() {
    let (tech, nets) = suite(102, 3);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let out = rip(net, &tech, tmin * 1.4, &RipConfig::paper()).unwrap();
        let timing = evaluate(net, tech.device(), &out.solution.assignment);
        assert!(
            (timing.total_delay - out.solution.delay_fs).abs() < 1e-6,
            "reported delay diverges from Eq. (2) evaluation"
        );
        assert!((out.solution.assignment.total_width() - out.solution.total_width).abs() < 1e-9);
    }
}

#[test]
fn rip_beats_coarse_baseline_on_average() {
    // Figure 7(b)'s regime: against a coarse-granularity baseline
    // (g=40u), RIP should win consistently across the sweep.
    let (tech, nets) = suite(103, 3);
    let baseline_cfg = BaselineConfig::paper_table1(40.0);
    let mut savings = Vec::new();
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        for mult in [1.25, 1.55, 1.85] {
            let target = tmin * mult;
            let rip_sol = rip(net, &tech, target, &RipConfig::paper()).unwrap();
            let dp_sol = baseline_dp(net, tech.device(), &baseline_cfg, target).unwrap();
            savings.push(power_saving_percent(
                dp_sol.total_width,
                rip_sol.solution.total_width,
            ));
        }
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        mean > 0.0,
        "RIP should save power vs the coarse baseline on average, got {mean:.2}% ({savings:?})"
    );
}

#[test]
fn rip_is_competitive_with_equal_granularity_baseline() {
    // Table 2's gDP=10u row: same 10u width grid for both schemes; RIP
    // must stay close (the paper reports it slightly *ahead* thanks to
    // its locally finer 50 um candidate windows).
    let (tech, nets) = suite(104, 3);
    let baseline_cfg = BaselineConfig::paper_table2(10.0);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        for mult in [1.3, 1.7] {
            let target = tmin * mult;
            let rip_sol = rip(net, &tech, target, &RipConfig::paper()).unwrap();
            let dp_sol = baseline_dp(net, tech.device(), &baseline_cfg, target).unwrap();
            let saving = power_saving_percent(dp_sol.total_width, rip_sol.solution.total_width);
            assert!(
                saving > -5.0,
                "RIP lost {saving:.1}% to the equal-granularity baseline (mult {mult})"
            );
        }
    }
}

#[test]
fn regression_rounding_feasibility_is_recovered_by_enrichment() {
    // Regression (DESIGN.md §6, robustness item 1): seed-104 net #1 at a
    // loose target. REFINE lands on two ~50u repeaters whose rounded
    // widths just miss timing; without library enrichment the fine DP was
    // forced into a third repeater (+36% width vs the baseline). The
    // enriched library must recover parity.
    let (tech, nets) = suite(104, 2);
    let net = &nets[1];
    let tmin = tau_min_paper(net, tech.device());
    let target = tmin * 1.7;
    let rip_sol = rip(net, &tech, target, &RipConfig::paper()).unwrap();
    let dp_sol = baseline_dp(
        net,
        tech.device(),
        &BaselineConfig::paper_table2(10.0),
        target,
    )
    .unwrap();
    let saving = power_saving_percent(dp_sol.total_width, rip_sol.solution.total_width);
    assert!(
        saving > -3.0,
        "enrichment regression: RIP {} vs DP {} ({saving:.1}%)",
        rip_sol.solution.total_width,
        dp_sol.total_width
    );
}

#[test]
fn regression_repeater_count_lock_in_is_broken_by_drop_branch() {
    // Regression (DESIGN.md §6, robustness item 2): the seed-7 net at
    // 1.5x tau_min wants a single ~90u repeater, but the coarse library's
    // 80u minimum seeded two; without the (n-1) branch RIP returned 130u
    // (+44%). The drop branch must find the single-repeater solution
    // despite the forbidden zone sitting between the two seeds.
    let tech = Technology::generic_180nm();
    let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 7).unwrap();
    let net = gen.generate();
    let tmin = tau_min_paper(&net, tech.device());
    let target = tmin * 1.5;
    let rip_sol = rip(&net, &tech, target, &RipConfig::paper()).unwrap();
    let dp_sol = baseline_dp(
        &net,
        tech.device(),
        &BaselineConfig::paper_table2(10.0),
        target,
    )
    .unwrap();
    assert!(
        rip_sol.solution.total_width <= dp_sol.total_width * 1.03,
        "count lock-in regression: RIP {} vs DP {}",
        rip_sol.solution.total_width,
        dp_sol.total_width
    );
    // And the strict-paper configuration (extensions off) must still be
    // feasible, if possibly heavier - pins the config switch behaviour.
    let mut strict = RipConfig::paper();
    strict.fine.enrich_steps = 0;
    strict.fine.try_fewer_repeaters = false;
    let strict_sol = rip(&net, &tech, target, &strict).unwrap();
    assert!(strict_sol.solution.meets(target));
    assert!(strict_sol.solution.total_width >= rip_sol.solution.total_width - 1e-9);
}

#[test]
fn pipeline_is_deterministic() {
    let (tech, nets) = suite(105, 2);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let a = rip(net, &tech, tmin * 1.4, &RipConfig::paper()).unwrap();
        let b = rip(net, &tech, tmin * 1.4, &RipConfig::paper()).unwrap();
        assert_eq!(a.solution.assignment, b.solution.assignment);
        assert_eq!(a.solution.total_width, b.solution.total_width);
    }
}

#[test]
fn loose_targets_use_less_width_than_tight_ones() {
    let (tech, nets) = suite(106, 2);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let mut prev = f64::INFINITY;
        for mult in [1.1, 1.4, 1.7, 2.0] {
            let out = rip(net, &tech, tmin * mult, &RipConfig::paper()).unwrap();
            assert!(
                out.solution.total_width <= prev * 1.02 + 1e-9,
                "width should trend down as targets loosen"
            );
            prev = out.solution.total_width;
        }
    }
}

#[test]
fn zone_heavy_nets_remain_solvable() {
    // Stress: zones covering half the net.
    let tech = Technology::generic_180nm();
    let config = RandomNetConfig {
        zone_fraction: (0.45, 0.5),
        ..RandomNetConfig::default()
    };
    let nets = NetGenerator::suite(config, 107, 3).unwrap();
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let out = rip(net, &tech, tmin * 1.5, &RipConfig::paper()).unwrap();
        out.solution.assignment.validate_on(net).unwrap();
        assert!(out.solution.meets(tmin * 1.5));
    }
}
