//! Batch-engine guarantees: `Engine::solve_batch` is byte-identical to
//! sequential `rip()` calls, and a session's caches actually get reused.

use rip_core::{rip, BatchTarget, Engine, RipConfig, RipOutcome};
use rip_net::{NetBuilder, NetGenerator, RandomNetConfig, Segment, TwoPinNet};
use rip_tech::Technology;

fn suite(seed: u64, count: usize) -> Vec<TwoPinNet> {
    NetGenerator::suite(RandomNetConfig::default(), seed, count).unwrap()
}

/// Everything except wall-clock runtimes must match exactly; the Debug
/// rendering pins every float bit of the solutions.
fn assert_outcomes_identical(batch: &RipOutcome, sequential: &RipOutcome, net_index: usize) {
    assert_eq!(
        format!("{:?}", batch.solution),
        format!("{:?}", sequential.solution),
        "net {net_index}: batch solution diverged from sequential rip()"
    );
    assert_eq!(
        batch.coarse, sequential.coarse,
        "net {net_index}: coarse seed diverged"
    );
    assert_eq!(
        batch.refined, sequential.refined,
        "net {net_index}: refinement diverged"
    );
    assert_eq!(
        batch.library, sequential.library,
        "net {net_index}: library diverged"
    );
    assert_eq!(
        batch.candidate_count, sequential.candidate_count,
        "net {net_index}: candidate count diverged"
    );
}

#[test]
fn batch_of_50_nets_is_byte_identical_to_sequential_rip() {
    let tech = Technology::generic_180nm();
    let config = RipConfig::paper();
    let nets = suite(2005, 50);

    let engine = Engine::new(tech.clone(), config.clone());
    let targets: Vec<f64> = nets.iter().map(|net| engine.tau_min(net) * 1.4).collect();
    let batch = engine.solve_batch(&nets, &BatchTarget::PerNetFs(targets.clone()));

    for (i, (net, (outcome, &target_fs))) in nets.iter().zip(batch.iter().zip(&targets)).enumerate()
    {
        let sequential = rip(net, &tech, target_fs, &config).unwrap();
        let batched = outcome.as_ref().unwrap();
        assert_outcomes_identical(batched, &sequential, i);
        assert!(
            batched.solution.meets(target_fs),
            "net {i} missed its target"
        );
        batched.solution.assignment.validate_on(net).unwrap();
    }
}

#[test]
fn tau_min_multiple_targets_match_per_net_resolution() {
    let engine = Engine::paper(Technology::generic_180nm());
    let nets = suite(17, 8);
    let by_multiple = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.45));
    let targets: Vec<f64> = nets.iter().map(|net| engine.tau_min(net) * 1.45).collect();
    let by_explicit = engine.solve_batch(&nets, &BatchTarget::PerNetFs(targets));
    for (i, (a, b)) in by_multiple.iter().zip(&by_explicit).enumerate() {
        assert_eq!(
            a.as_ref().unwrap().solution,
            b.as_ref().unwrap().solution,
            "net {i}: target resolution paths disagree"
        );
    }
}

#[test]
fn second_identical_batch_reuses_the_session_cache() {
    let engine = Engine::paper(Technology::generic_180nm());
    let nets = suite(42, 10);
    let target = BatchTarget::TauMinMultiple(1.4);

    let _ = engine.solve_batch(&nets, &target);
    let first = engine.stats();
    assert!(first.misses() > 0, "first batch must populate the cache");
    assert_eq!(first.nets_solved, nets.len() as u64);

    let _ = engine.solve_batch(&nets, &target);
    let second = engine.stats();
    assert_eq!(
        second.misses(),
        first.misses(),
        "second identical batch recomputed cached state"
    );
    assert!(
        second.hits() > first.hits(),
        "second identical batch should be served from the cache"
    );
    assert_eq!(second.nets_solved, 2 * nets.len() as u64);
}

/// Candidate grids depend only on net *geometry* (length + zones), not
/// driver/receiver widths — the seed keyed them on the full net and so
/// rebuilt identical grids for every width variant. Nets sharing a
/// geometry must now share one cached coarse grid: grid hit rate
/// `(n-1)/n` across `n` width variants, where the seed scored `0/n`.
#[test]
fn width_variants_of_one_geometry_share_the_cached_grid() {
    let engine = Engine::paper(Technology::generic_180nm());
    let variants: Vec<TwoPinNet> = [100.0, 115.0, 130.0, 145.0, 160.0]
        .iter()
        .map(|&driver| {
            NetBuilder::new()
                .segment(Segment::new(6000.0, 0.08, 0.20))
                .segment(Segment::new(6000.0, 0.06, 0.18))
                .forbidden_zone(4000.0, 7000.0)
                .unwrap()
                .driver_width(driver)
                .receiver_width(60.0)
                .build()
                .unwrap()
        })
        .collect();
    let outs = engine.solve_batch(&variants, &BatchTarget::TauMinMultiple(1.4));
    for (i, out) in outs.iter().enumerate() {
        assert!(out.is_ok(), "variant {i} failed: {:?}", out.as_ref().err());
    }
    let stats = engine.stats();
    assert_eq!(
        stats.grid_misses, 1,
        "five width variants of one geometry must build exactly one coarse grid"
    );
    assert_eq!(
        stats.grid_hits,
        variants.len() as u64 - 1,
        "the remaining variants must be served from the cache"
    );
    // And the shared grid must not have changed any result: each variant
    // matches its standalone solve.
    let tech = Technology::generic_180nm();
    let config = RipConfig::paper();
    for (i, (net, out)) in variants.iter().zip(&outs).enumerate() {
        let target = engine.tau_min(net) * 1.4;
        let standalone = rip(net, &tech, target, &config).unwrap();
        assert_eq!(
            format!("{:?}", out.as_ref().unwrap().solution),
            format!("{:?}", standalone.solution),
            "variant {i}: shared grid changed the solution"
        );
    }
}

/// The fine stage's windowed candidate sets are cached too: re-solving
/// the same nets converts every window build into a hit.
#[test]
fn repeated_batches_reuse_windowed_candidate_sets() {
    let engine = Engine::paper(Technology::generic_180nm());
    let nets = suite(42, 6);
    let target = BatchTarget::TauMinMultiple(1.4);
    let _ = engine.solve_batch(&nets, &target);
    let first = engine.stats();
    assert!(
        first.window_misses > 0,
        "the fine stage must request windowed candidate sets"
    );
    let _ = engine.solve_batch(&nets, &target);
    let second = engine.stats();
    assert_eq!(
        second.window_misses, first.window_misses,
        "second identical batch rebuilt windowed candidate sets"
    );
    assert!(
        second.window_hits > first.window_hits,
        "second identical batch should hit the window cache"
    );
}

#[test]
fn fresh_engines_do_not_share_state() {
    let nets = suite(9, 3);
    let a = Engine::paper(Technology::generic_180nm());
    let _ = a.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.5));
    let b = Engine::paper(Technology::generic_180nm());
    assert_eq!(b.stats().hits(), 0);
    assert_eq!(b.stats().misses(), 0);
    // Same configuration hash, independent caches.
    assert_eq!(a.config_hash(), b.config_hash());
}
