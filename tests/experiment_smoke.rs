//! Smoke tests for the experiment harness at reduced scale: the paper's
//! qualitative claims must already be visible on small suites.

use rip_report::experiments::figure7::{run_figure7, zone1_fraction, Figure7Config};
use rip_report::experiments::table1::{render_table1, run_table1, Table1Config};
use rip_report::experiments::table2::{render_table2, run_table2, Table2Config};

#[test]
fn table1_shape_matches_paper_claims() {
    let out = run_table1(&Table1Config {
        seed: 2005,
        net_count: 3,
        target_count: 6,
        granularities: vec![10.0, 20.0, 40.0],
        ..Default::default()
    });
    assert_eq!(
        out.rip_failures, 0,
        "RIP must always succeed (paper, Section 6)"
    );
    // g=10u: violations appear (zone I).
    let v10: usize = out.rows.iter().map(|r| r[0].baseline_violations).sum();
    assert!(v10 > 0, "expected V_DP > 0 at g=10u");
    // Coarser baselines have no violations but lose power on average.
    let v40: usize = out.rows.iter().map(|r| r[2].baseline_violations).sum();
    assert_eq!(v40, 0, "g=40u reaches 370u and must stay feasible");
    assert!(
        out.averages[2].mean_percent > 0.0,
        "RIP should save power vs g=40u on average, got {:.2}%",
        out.averages[2].mean_percent
    );
    // And the coarser the library, the larger the average saving.
    assert!(
        out.averages[2].mean_percent >= out.averages[1].mean_percent - 1.0,
        "g=40u saving {:.2}% should be >= g=20u saving {:.2}%",
        out.averages[2].mean_percent,
        out.averages[1].mean_percent
    );
    let text = render_table1(&out);
    assert!(text.contains("Ave"));
}

#[test]
fn figure7_shape_matches_paper_zones() {
    let out = run_figure7(&Figure7Config {
        seed: 2005,
        net_count: 3,
        target_count: 6,
        ..Default::default()
    });
    // Panel (a): zone I exists; panel (b): it does not.
    assert!(zone1_fraction(&out.panel_a) > 0.0);
    assert_eq!(zone1_fraction(&out.panel_b), 0.0);
    // Panel (b): savings grow towards looser targets (paper: "power
    // savings increase when the timing target becomes loose").
    let trend = rip_report::experiments::figure7::mean_by_multiplier(&out.panel_b);
    let first = trend.first().unwrap().1.expect("panel (b) always feasible");
    let last = trend.last().unwrap().1.expect("panel (b) always feasible");
    assert!(
        last >= first - 2.0,
        "panel (b) saving should not collapse towards loose targets: {first:.2}% -> {last:.2}%"
    );
}

#[test]
fn table2_shape_matches_paper_tradeoff() {
    let out = run_table2(&Table2Config {
        seed: 2005,
        net_count: 2,
        target_count: 4,
        granularities: vec![40.0, 20.0, 10.0],
        ..Default::default()
    });
    assert_eq!(out.rip_failures, 0);
    // Quality gap shrinks with finer granularity...
    assert!(
        out.rows[2].delta_mean_percent <= out.rows[0].delta_mean_percent + 1e-9,
        "gDP=10u gap {:.2}% should be <= gDP=40u gap {:.2}%",
        out.rows[2].delta_mean_percent,
        out.rows[0].delta_mean_percent
    );
    // ...while the runtime cost grows.
    assert!(
        out.rows[2].t_dp >= out.rows[0].t_dp,
        "gDP=10u ({:?}) should cost at least gDP=40u ({:?})",
        out.rows[2].t_dp,
        out.rows[0].t_dp
    );
    let text = render_table2(&out);
    assert!(text.contains("Speedup"));
}
