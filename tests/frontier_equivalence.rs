//! The sorted struct-of-arrays frontier pruner must be *byte-identical*
//! to the seed pruner (`rip_dp::reference`) — same assignments, same
//! float bits, same work counters — across a 50-net determinism corpus.
//!
//! The `Debug` rendering pins every float bit: if any pruning decision,
//! tie-break, or counter diverges, these tests name the net and target
//! that exposed it.

use rip_dp::{reference, solve_min_delay, solve_min_power, CandidateSet, DpError};
use rip_net::{NetGenerator, RandomNetConfig, TwoPinNet};
use rip_tech::{RepeaterLibrary, Technology};

fn corpus() -> Vec<TwoPinNet> {
    NetGenerator::suite(RandomNetConfig::default(), 2005, 50).unwrap()
}

#[test]
fn min_delay_is_byte_identical_to_reference_on_50_net_corpus() {
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().enumerate() {
        let cands = CandidateSet::uniform(net, 200.0);
        let new = solve_min_delay(net, tech.device(), &lib, &cands);
        let old = reference::solve_min_delay(net, tech.device(), &lib, &cands);
        assert_eq!(
            format!("{new:?}"),
            format!("{old:?}"),
            "net {i}: min-delay solution diverged from the seed pruner"
        );
    }
}

#[test]
fn min_power_is_byte_identical_to_reference_on_50_net_corpus() {
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().enumerate() {
        let cands = CandidateSet::uniform(net, 200.0);
        let tau_min = reference::solve_min_delay(net, tech.device(), &lib, &cands).delay_fs;
        for mult in [1.25, 1.6] {
            let target = tau_min * mult;
            let new = solve_min_power(net, tech.device(), &lib, &cands, target).unwrap();
            let old = reference::solve_min_power(net, tech.device(), &lib, &cands, target).unwrap();
            assert_eq!(
                format!("{new:?}"),
                format!("{old:?}"),
                "net {i} mult {mult}: min-power solution diverged from the seed pruner"
            );
        }
    }
}

#[test]
fn infeasible_targets_report_identical_achievable_delays() {
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().take(10).enumerate() {
        let cands = CandidateSet::uniform(net, 200.0);
        let tau_min = reference::solve_min_delay(net, tech.device(), &lib, &cands).delay_fs;
        let target = tau_min * 0.5;
        let new = solve_min_power(net, tech.device(), &lib, &cands, target).unwrap_err();
        let old = reference::solve_min_power(net, tech.device(), &lib, &cands, target).unwrap_err();
        match (&new, &old) {
            (
                DpError::InfeasibleTarget {
                    achievable_fs: a, ..
                },
                DpError::InfeasibleTarget {
                    achievable_fs: b, ..
                },
            ) => {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "net {i}: achievable delay diverged"
                );
            }
            other => panic!("net {i}: unexpected error pair {other:?}"),
        }
    }
}
