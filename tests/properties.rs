//! Property-based tests (proptest) over the core data structures and
//! invariants.

use proptest::prelude::*;
use rip_core::prelude::*;
use rip_delay::evaluate;
use rip_net::{RcProfile, Segment};
use rip_tech::{round_to_grid, RepeaterLibrary, Technology};

/// Strategy: a random multi-layer segment chain (2-8 segments).
fn segments_strategy() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        (500.0_f64..3000.0, 0.02_f64..0.15, 0.1_f64..0.3)
            .prop_map(|(l, r, c)| Segment::new(l, r, c)),
        2..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_algebra_is_additive(segs in segments_strategy(), split in 0.05_f64..0.95) {
        let profile = RcProfile::new(&segs).unwrap();
        let l = profile.total_length();
        let mid = l * split;
        let left = profile.interval(0.0, mid);
        let right = profile.interval(mid, l);
        let whole = profile.interval(0.0, l);
        // R and C add; the Elmore term composes with the cross term.
        prop_assert!((whole.resistance - (left.resistance + right.resistance)).abs() < 1e-9 * whole.resistance.max(1.0));
        prop_assert!((whole.capacitance - (left.capacitance + right.capacitance)).abs() < 1e-9 * whole.capacitance.max(1.0));
        let composed = left.elmore + right.elmore + left.resistance * right.capacitance;
        prop_assert!((whole.elmore - composed).abs() < 1e-9 * whole.elmore.max(1.0));
    }

    #[test]
    fn prefix_functions_are_monotone(segs in segments_strategy(), a in 0.0_f64..1.0, b in 0.0_f64..1.0) {
        let profile = RcProfile::new(&segs).unwrap();
        let l = profile.total_length();
        let (lo, hi) = if a <= b { (a * l, b * l) } else { (b * l, a * l) };
        prop_assert!(profile.resistance_to(hi) >= profile.resistance_to(lo) - 1e-12);
        prop_assert!(profile.capacitance_to(hi) >= profile.capacitance_to(lo) - 1e-12);
        let iv = profile.interval(lo, hi);
        prop_assert!(iv.resistance >= -1e-12);
        prop_assert!(iv.capacitance >= -1e-12);
        prop_assert!(iv.elmore >= -1e-9);
    }

    #[test]
    fn delay_is_positive_and_grows_with_load(
        segs in segments_strategy(),
        pos_frac in 0.2_f64..0.8,
        width in 20.0_f64..300.0,
    ) {
        let tech = Technology::generic_180nm();
        let net = TwoPinNet::new(segs, vec![], 120.0, 60.0).unwrap();
        let l = net.total_length();
        let asg = RepeaterAssignment::new(vec![Repeater::new(pos_frac * l, width)]).unwrap();
        let d = evaluate(&net, tech.device(), &asg).total_delay;
        prop_assert!(d > 0.0);
        // A heavier receiver strictly slows the net.
        let heavy = TwoPinNet::new(net.segments().to_vec(), vec![], 120.0, 120.0).unwrap();
        let d_heavy = evaluate(&heavy, tech.device(), &asg).total_delay;
        prop_assert!(d_heavy > d);
    }

    #[test]
    fn library_rounding_is_idempotent_and_near(width in 1.0_f64..500.0, grid in 1.0_f64..50.0) {
        let once = round_to_grid(width, grid);
        let twice = round_to_grid(once, grid);
        prop_assert_eq!(once, twice);
        prop_assert!(once >= grid);
        // Rounding moves a width by at most half a grid step (except the
        // clamp at the bottom).
        if width >= grid {
            prop_assert!((once - width).abs() <= grid / 2.0 + 1e-9);
        }
    }

    #[test]
    fn library_nearest_is_consistent(
        widths in prop::collection::vec(1.0_f64..400.0, 1..12),
        probe in 1.0_f64..450.0,
    ) {
        let lib = RepeaterLibrary::from_widths(widths.clone()).unwrap();
        let nearest = lib.nearest(probe);
        // No library width is strictly closer.
        for &w in lib.widths() {
            prop_assert!((probe - nearest).abs() <= (probe - w).abs() + 1e-9);
        }
    }

    #[test]
    fn generated_nets_obey_their_configuration(seed in 0u64..10_000) {
        let config = RandomNetConfig::default();
        let mut gen = NetGenerator::from_seed(config.clone(), seed).unwrap();
        let net = gen.generate();
        prop_assert!(net.segments().len() >= config.segment_count.0);
        prop_assert!(net.segments().len() <= config.segment_count.1);
        let frac = net.forbidden_fraction();
        prop_assert!(frac >= config.zone_fraction.0 - 1e-9);
        prop_assert!(frac <= config.zone_fraction.1 + 1e-9);
        // Zones are inside the span and normalized.
        for z in net.zones() {
            prop_assert!(z.start() >= 0.0 && z.end() <= net.total_length() + 1e-9);
        }
    }

    #[test]
    fn uniform_candidates_are_legal_sorted_unique(
        seed in 0u64..10_000,
        step in 100.0_f64..800.0,
    ) {
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), seed).unwrap();
        let net = gen.generate();
        let cands = CandidateSet::uniform(&net, step);
        let pos = cands.positions();
        for w in pos.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for &x in pos {
            prop_assert!(net.is_legal_position(x));
        }
    }
}

proptest! {
    // The DP-involving properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dp_power_is_monotone_in_target(seed in 0u64..1000) {
        let tech = Technology::generic_180nm();
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), seed).unwrap();
        let net = gen.generate();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let cands = CandidateSet::uniform(&net, 400.0);
        let fastest = rip_dp::solve_min_delay(&net, tech.device(), &lib, &cands);
        let mut prev = f64::INFINITY;
        for mult in [1.1, 1.5, 2.0] {
            let sol = rip_dp::solve_min_power(
                &net, tech.device(), &lib, &cands, fastest.delay_fs * mult,
            ).unwrap();
            prop_assert!(sol.total_width <= prev + 1e-9);
            prop_assert!(sol.delay_fs <= fastest.delay_fs * mult * (1.0 + 1e-12));
            sol.assignment.validate_on(&net).unwrap();
            prev = sol.total_width;
        }
    }

    #[test]
    fn rip_solutions_are_legal_and_meet_targets(seed in 0u64..1000) {
        let tech = Technology::generic_180nm();
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), seed).unwrap();
        let net = gen.generate();
        let tmin = rip_core::tau_min_paper(&net, tech.device());
        let target = tmin * 1.45;
        let out = rip(&net, &tech, target, &RipConfig::paper()).unwrap();
        prop_assert!(out.solution.meets(target));
        out.solution.assignment.validate_on(&net).unwrap();
    }
}
