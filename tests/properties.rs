//! Randomized property tests over the core data structures and
//! invariants.
//!
//! The workspace builds offline without proptest, so these properties are
//! exercised with a seeded [`SplitMix64`] case loop: deterministic,
//! reproducible (the failing case's seed is in the assertion message),
//! and dependency-free.

use rip_core::prelude::*;
use rip_delay::evaluate;
use rip_net::{RcProfile, Segment, SplitMix64};
use rip_tech::{round_to_grid, RepeaterLibrary, Technology};

/// A random multi-layer segment chain (2-8 segments).
fn random_segments(rng: &mut SplitMix64) -> Vec<Segment> {
    let n = rng.range_usize(2, 8);
    (0..n)
        .map(|_| {
            Segment::new(
                rng.range_f64(500.0, 3000.0),
                rng.range_f64(0.02, 0.15),
                rng.range_f64(0.1, 0.3),
            )
        })
        .collect()
}

#[test]
fn interval_algebra_is_additive() {
    let mut rng = SplitMix64::new(0xA1);
    for case in 0..64 {
        let segs = random_segments(&mut rng);
        let split = rng.range_f64(0.05, 0.95);
        let profile = RcProfile::new(&segs).unwrap();
        let l = profile.total_length();
        let mid = l * split;
        let left = profile.interval(0.0, mid);
        let right = profile.interval(mid, l);
        let whole = profile.interval(0.0, l);
        // R and C add; the Elmore term composes with the cross term.
        assert!(
            (whole.resistance - (left.resistance + right.resistance)).abs()
                < 1e-9 * whole.resistance.max(1.0),
            "case {case}: resistance not additive"
        );
        assert!(
            (whole.capacitance - (left.capacitance + right.capacitance)).abs()
                < 1e-9 * whole.capacitance.max(1.0),
            "case {case}: capacitance not additive"
        );
        let composed = left.elmore + right.elmore + left.resistance * right.capacitance;
        assert!(
            (whole.elmore - composed).abs() < 1e-9 * whole.elmore.max(1.0),
            "case {case}: elmore does not compose"
        );
    }
}

#[test]
fn prefix_functions_are_monotone() {
    let mut rng = SplitMix64::new(0xA2);
    for case in 0..64 {
        let segs = random_segments(&mut rng);
        let (a, b) = (rng.range_f64(0.0, 1.0), rng.range_f64(0.0, 1.0));
        let profile = RcProfile::new(&segs).unwrap();
        let l = profile.total_length();
        let (lo, hi) = if a <= b {
            (a * l, b * l)
        } else {
            (b * l, a * l)
        };
        assert!(
            profile.resistance_to(hi) >= profile.resistance_to(lo) - 1e-12,
            "case {case}"
        );
        assert!(
            profile.capacitance_to(hi) >= profile.capacitance_to(lo) - 1e-12,
            "case {case}"
        );
        let iv = profile.interval(lo, hi);
        assert!(iv.resistance >= -1e-12, "case {case}");
        assert!(iv.capacitance >= -1e-12, "case {case}");
        assert!(iv.elmore >= -1e-9, "case {case}");
    }
}

#[test]
fn delay_is_positive_and_grows_with_load() {
    let tech = Technology::generic_180nm();
    let mut rng = SplitMix64::new(0xA3);
    for case in 0..64 {
        let segs = random_segments(&mut rng);
        let pos_frac = rng.range_f64(0.2, 0.8);
        let width = rng.range_f64(20.0, 300.0);
        let net = TwoPinNet::new(segs, vec![], 120.0, 60.0).unwrap();
        let l = net.total_length();
        let asg = RepeaterAssignment::new(vec![Repeater::new(pos_frac * l, width)]).unwrap();
        let d = evaluate(&net, tech.device(), &asg).total_delay;
        assert!(d > 0.0, "case {case}: non-positive delay");
        // A heavier receiver strictly slows the net.
        let heavy = TwoPinNet::new(net.segments().to_vec(), vec![], 120.0, 120.0).unwrap();
        let d_heavy = evaluate(&heavy, tech.device(), &asg).total_delay;
        assert!(
            d_heavy > d,
            "case {case}: heavier receiver did not slow the net"
        );
    }
}

#[test]
fn library_rounding_is_idempotent_and_near() {
    let mut rng = SplitMix64::new(0xA4);
    for case in 0..256 {
        let width = rng.range_f64(1.0, 500.0);
        let grid = rng.range_f64(1.0, 50.0);
        let once = round_to_grid(width, grid);
        let twice = round_to_grid(once, grid);
        assert_eq!(once, twice, "case {case}: rounding not idempotent");
        assert!(once >= grid, "case {case}");
        // Rounding moves a width by at most half a grid step (except the
        // clamp at the bottom).
        if width >= grid {
            assert!((once - width).abs() <= grid / 2.0 + 1e-9, "case {case}");
        }
    }
}

#[test]
fn library_nearest_is_consistent() {
    let mut rng = SplitMix64::new(0xA5);
    for case in 0..256 {
        let n = rng.range_usize(1, 12);
        let widths: Vec<f64> = (0..n).map(|_| rng.range_f64(1.0, 400.0)).collect();
        let probe = rng.range_f64(1.0, 450.0);
        let lib = RepeaterLibrary::from_widths(widths).unwrap();
        let nearest = lib.nearest(probe);
        // No library width is strictly closer.
        for &w in lib.widths() {
            assert!(
                (probe - nearest).abs() <= (probe - w).abs() + 1e-9,
                "case {case}: {w} is closer to {probe} than {nearest}"
            );
        }
    }
}

#[test]
fn generated_nets_obey_their_configuration() {
    let mut rng = SplitMix64::new(0xA6);
    for case in 0..64 {
        let seed = rng.next_u64();
        let config = RandomNetConfig::default();
        let mut gen = NetGenerator::from_seed(config.clone(), seed).unwrap();
        let net = gen.generate();
        assert!(
            net.segments().len() >= config.segment_count.0,
            "case {case} (seed {seed})"
        );
        assert!(
            net.segments().len() <= config.segment_count.1,
            "case {case} (seed {seed})"
        );
        let frac = net.forbidden_fraction();
        assert!(
            frac >= config.zone_fraction.0 - 1e-9,
            "case {case} (seed {seed})"
        );
        assert!(
            frac <= config.zone_fraction.1 + 1e-9,
            "case {case} (seed {seed})"
        );
        // Zones are inside the span and normalized.
        for z in net.zones() {
            assert!(
                z.start() >= 0.0 && z.end() <= net.total_length() + 1e-9,
                "case {case} (seed {seed})"
            );
        }
    }
}

#[test]
fn uniform_candidates_are_legal_sorted_unique() {
    let mut rng = SplitMix64::new(0xA7);
    for case in 0..64 {
        let seed = rng.next_u64();
        let step = rng.range_f64(100.0, 800.0);
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), seed).unwrap();
        let net = gen.generate();
        let cands = CandidateSet::uniform(&net, step);
        let pos = cands.positions();
        for w in pos.windows(2) {
            assert!(
                w[1] > w[0],
                "case {case} (seed {seed}): positions not ascending"
            );
        }
        for &x in pos {
            assert!(
                net.is_legal_position(x),
                "case {case} (seed {seed}): illegal {x}"
            );
        }
    }
}

// The DP-involving properties are more expensive: fewer cases.

#[test]
fn dp_power_is_monotone_in_target() {
    let tech = Technology::generic_180nm();
    let mut rng = SplitMix64::new(0xA8);
    for case in 0..12 {
        let seed = rng.next_u64();
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), seed).unwrap();
        let net = gen.generate();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let cands = CandidateSet::uniform(&net, 400.0);
        let fastest = rip_dp::solve_min_delay(&net, tech.device(), &lib, &cands);
        let mut prev = f64::INFINITY;
        for mult in [1.1, 1.5, 2.0] {
            let sol =
                rip_dp::solve_min_power(&net, tech.device(), &lib, &cands, fastest.delay_fs * mult)
                    .unwrap();
            assert!(sol.total_width <= prev + 1e-9, "case {case} (seed {seed})");
            assert!(
                sol.delay_fs <= fastest.delay_fs * mult * (1.0 + 1e-12),
                "case {case} (seed {seed})"
            );
            sol.assignment.validate_on(&net).unwrap();
            prev = sol.total_width;
        }
    }
}

#[test]
fn rip_solutions_are_legal_and_meet_targets() {
    let tech = Technology::generic_180nm();
    let mut rng = SplitMix64::new(0xA9);
    for case in 0..12 {
        let seed = rng.next_u64();
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), seed).unwrap();
        let net = gen.generate();
        let tmin = rip_core::tau_min_paper(&net, tech.device());
        let target = tmin * 1.45;
        let out = rip(&net, &tech, target, &RipConfig::paper()).unwrap();
        assert!(out.solution.meets(target), "case {case} (seed {seed})");
        out.solution.assignment.validate_on(&net).unwrap();
    }
}
