//! Invariants of the analytical solver on randomized inputs: KKT
//! satisfaction, monotone improvement, movement optimality, and the
//! interplay with the DP stages.

use rip_core::prelude::*;
use rip_core::tau_min_paper;
use rip_delay::ChainView;
use rip_dp::solve_min_power;
use rip_net::Side;
use rip_refine::{kkt_residuals, solve_widths, MoveDecision, WidthSolverConfig};
use rip_tech::{RepeaterLibrary, Technology};

fn paper_nets(seed: u64, count: usize) -> (Technology, Vec<TwoPinNet>) {
    let tech = Technology::generic_180nm();
    let nets = NetGenerator::suite(RandomNetConfig::default(), seed, count).unwrap();
    (tech, nets)
}

#[test]
fn kkt_holds_at_width_solutions_across_nets() {
    let (tech, nets) = paper_nets(51, 4);
    for net in &nets {
        let l = net.total_length();
        let positions: Vec<f64> = (1..=4).map(|i| l * i as f64 / 5.0).collect();
        let view = ChainView::new(net, tech.device(), positions).unwrap();
        let probe = view.total_delay(&[150.0; 4]);
        for mult in [1.1, 1.5] {
            let target = probe * mult;
            let sol = solve_widths(&view, target, &WidthSolverConfig::default()).unwrap();
            let res = kkt_residuals(&view, &sol.widths, sol.lambda, target);
            let floor_active = sol.widths.iter().any(|&w| w <= 1.0 + 1e-9);
            if !floor_active {
                for (i, r) in res[..sol.widths.len()].iter().enumerate() {
                    assert!(
                        r.abs() < 1e-5,
                        "stationarity residual {i} = {r} (mult {mult})"
                    );
                }
                // Eq. (5): the timing constraint binds.
                assert!(
                    res[sol.widths.len()].abs() < 1e-5 * target,
                    "constraint residual {} (mult {mult})",
                    res[sol.widths.len()]
                );
            }
        }
    }
}

#[test]
fn refine_improves_on_its_dp_seed() {
    // REFINE's purpose inside RIP: continuous relaxation from the coarse
    // DP seed must not be worse than the seed itself.
    let (tech, nets) = paper_nets(53, 3);
    let coarse_lib = RepeaterLibrary::paper_coarse();
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let target = tmin * 1.4;
        let cands = CandidateSet::uniform(net, 200.0);
        let seed_sol = solve_min_power(net, tech.device(), &coarse_lib, &cands, target).unwrap();
        let refined = refine(
            net,
            tech.device(),
            &seed_sol.assignment.positions(),
            target,
            &RefineConfig::default(),
        )
        .unwrap();
        assert!(
            refined.total_width <= seed_sol.total_width + 1e-9,
            "refined {} vs seed {}",
            refined.total_width,
            seed_sol.total_width
        );
        assert!(refined.delay_fs <= target * (1.0 + 1e-9));
    }
}

#[test]
fn movement_conditions_hold_at_convergence() {
    // Eqs. (22)-(23) at the step-size scale: after convergence no single
    // repeater move of one step should promise a large delay gain.
    let (tech, nets) = paper_nets(55, 2);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let target = tmin * 1.5;
        let cands = CandidateSet::uniform(net, 200.0);
        let seed = solve_min_power(
            net,
            tech.device(),
            &RepeaterLibrary::paper_coarse(),
            &cands,
            target,
        )
        .unwrap();
        let out = refine(
            net,
            tech.device(),
            &seed.assignment.positions(),
            target,
            &RefineConfig::default(),
        )
        .unwrap();
        let view = ChainView::new(net, tech.device(), out.positions.clone()).unwrap();
        // Derivative scale for tolerance: fs per um.
        let scale: f64 = (0..out.widths.len())
            .map(|j| view.dtau_dx(&out.widths, j, Side::Downstream).abs())
            .fold(0.0, f64::max)
            .max(1.0);
        for j in 0..out.widths.len() {
            match rip_refine::decide_move(&view, &out.widths, j) {
                MoveDecision::Stay => {}
                MoveDecision::Downstream { gain } | MoveDecision::Upstream { gain } => {
                    // Residual gains are allowed if movement was blocked
                    // (zones/ordering) or below the convergence epsilon;
                    // they must just not dwarf the derivative scale.
                    assert!(
                        gain <= scale,
                        "repeater {j} still wants to move with gain {gain} (scale {scale})"
                    );
                }
            }
        }
    }
}

#[test]
fn width_history_is_monotone_on_random_seeds() {
    let (tech, nets) = paper_nets(57, 3);
    for net in &nets {
        let l = net.total_length();
        // Deliberately bad initial placement: all repeaters in the first
        // third (skipping any forbidden zone).
        let mut init = Vec::new();
        for i in 1..=3 {
            let x = l * i as f64 / 10.0;
            if let Some(x) = rip_net::snap_legal(net, x) {
                if init.last().map_or(true, |&p| x > p + 1.0) {
                    init.push(x);
                }
            }
        }
        if init.is_empty() {
            continue;
        }
        let view = ChainView::new(net, tech.device(), init.clone()).unwrap();
        let target = view.total_delay(&vec![200.0; init.len()]) * 1.3;
        let out = refine(net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        for w in out.width_history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "history regressed: {:?}",
                out.width_history
            );
        }
        assert!(out.total_width <= out.width_history[0] + 1e-9);
    }
}

#[test]
fn zone_hop_stays_close_and_respects_zones() {
    // Zone hopping is a greedy, discontinuous move: it can land REFINE in
    // a *different* local optimum, so strict dominance over the no-hop
    // path is not guaranteed (the paper only says it "may" improve
    // power). It must, however, stay close in quality and always produce
    // zone-legal solutions.
    let (tech, nets) = paper_nets(59, 3);
    for net in &nets {
        let tmin = tau_min_paper(net, tech.device());
        let target = tmin * 1.5;
        let cands = CandidateSet::uniform(net, 200.0);
        let seed = solve_min_power(
            net,
            tech.device(),
            &RepeaterLibrary::paper_coarse(),
            &cands,
            target,
        )
        .unwrap();
        let base = refine(
            net,
            tech.device(),
            &seed.assignment.positions(),
            target,
            &RefineConfig::default(),
        )
        .unwrap();
        let hop = refine(
            net,
            tech.device(),
            &seed.assignment.positions(),
            target,
            &RefineConfig {
                zone_hop_um: Some(10_000.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            hop.total_width <= base.total_width * 1.05 + 1e-6,
            "hopping regressed too far: {} vs {}",
            hop.total_width,
            base.total_width
        );
        hop.to_assignment().validate_on(net).unwrap();
    }
}
