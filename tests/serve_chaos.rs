//! The chaos suite: deterministic fault injection against a running
//! `rip_serve` server. Injected panics must surface as typed `internal`
//! errors (never dropped connections or wrong bytes), supervised
//! workers must respawn with permanent capacity, client retries must
//! converge to byte-identical answers under every fault kind, and the
//! `stats` wire view must account for the injected faults exactly.
//!
//! Every fault fires from a seeded [`FaultPlan`], so each test sees the
//! same schedule on every run — chaos here is an input, not a dice
//! roll.

use rip_core::Engine;
use rip_net::{NetGenerator, RandomNetConfig};
use rip_serve::{
    net_to_json, parse_json, run_loadgen, start_server, Client, FaultPlan, Json, LoadgenConfig,
    RetryPolicy, ServeConfig, ServeState,
};
use rip_tech::Technology;

fn engine() -> Engine {
    Engine::paper(Technology::generic_180nm())
}

#[test]
fn injected_panics_become_typed_internal_errors_and_respawns_restore_capacity() {
    let config = ServeConfig {
        workers: 2,
        shards: 2,
        faults: FaultPlan {
            panic_every: 3,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    // Round 1, fault plan armed, no retries: every injected panic must
    // surface as exactly one typed `internal` error — nothing else may
    // fail, and no connection may drop.
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 16,
        nets: 6,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(addr, None, &loadgen).unwrap();
    assert_eq!(outcome.requests, 32);
    assert!(outcome.errors > 0, "the fault plan must actually fire");
    assert_eq!(
        outcome.errors, outcome.internal_errors,
        "under panic faults the only acceptable failure is a typed internal error"
    );

    // The supervision ledger must match the injector's schedule exactly:
    // one caught panic and one respawn per injected fault, visible both
    // on the handle and on the wire.
    let injected = server.faults().injected_panics();
    assert_eq!(outcome.internal_errors as u64, injected);
    assert_eq!(server.panics_total(), injected);
    assert_eq!(server.respawns_total(), injected);
    let mut client = Client::connect(addr).unwrap();
    let stats = parse_json(&client.request_line(r#"{"id":1,"cmd":"stats"}"#).unwrap()).unwrap();
    assert_eq!(
        stats.get("panics").unwrap().as_f64(),
        Some(injected as f64),
        "the stats wire view must report the injected panic count exactly"
    );
    assert_eq!(
        stats.get("respawns").unwrap().as_f64(),
        Some(injected as f64)
    );

    // Round 2, faults disarmed: a full byte-checked round must come
    // back spotless — the respawned workers carry permanent capacity,
    // not a degraded pool.
    server.faults().set_armed(false);
    let reference = ServeState::new(engine());
    let recovered = run_loadgen(addr, Some(&reference), &loadgen).unwrap();
    assert_eq!(
        recovered.errors, 0,
        "a post-fault round must run clean: the pool must fully recover"
    );
    assert_eq!(recovered.internal_errors, 0);
    assert_eq!(
        recovered.mismatches, 0,
        "respawned engines must answer byte-identically"
    );
    assert!(recovered.verified > 0);
    server.shutdown();
}

#[test]
fn client_retries_converge_to_byte_identical_answers_under_panic_faults() {
    let config = ServeConfig {
        workers: 2,
        shards: 2,
        faults: FaultPlan {
            panic_every: 4,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();

    // Retries on, byte-checking on: every injected panic is retried
    // into the correct answer, so the outcome is indistinguishable from
    // a fault-free run — except for the retry counters, which must show
    // the faults actually fired.
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 16,
        nets: 6,
        retry: RetryPolicy::new(4, 1),
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(server.addr(), Some(&reference), &loadgen).unwrap();
    assert_eq!(
        outcome.errors, 0,
        "retries must absorb every injected panic"
    );
    assert_eq!(
        outcome.mismatches, 0,
        "a retried answer must be byte-identical to the reference"
    );
    assert_eq!(outcome.gave_up, 0, "no request may exhaust its retries");
    assert!(outcome.retries > 0, "the fault plan must actually fire");
    assert!(outcome.attempts > outcome.requests as u64);
    assert!(server.panics_total() > 0);
    assert_eq!(server.panics_total(), server.respawns_total());
    server.shutdown();
}

#[test]
fn delay_and_drop_faults_are_transparent_behind_retries() {
    // Direct mode this time, with the other two fault kinds: injected
    // delays slow requests without corrupting them, and injected
    // connection drops cut responses mid-line — which retries must turn
    // back into clean byte-identical answers.
    let config = ServeConfig {
        workers: 3,
        faults: FaultPlan {
            delay_every: 5,
            delay_ms: 10,
            drop_every: 7,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 16,
        nets: 6,
        retry: RetryPolicy::new(4, 1),
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(server.addr(), Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.errors, 0, "{outcome:?}");
    assert_eq!(outcome.mismatches, 0, "{outcome:?}");
    assert_eq!(outcome.gave_up, 0, "{outcome:?}");
    assert!(
        server.faults().injected_delays() > 0,
        "the delay fault must actually fire"
    );
    assert!(
        server.faults().injected_drops() > 0,
        "the drop fault must actually fire"
    );
    assert!(
        outcome.retries > 0,
        "dropped responses must have forced retries"
    );
    // No worker panicked: delays and drops exercise the transport, not
    // the supervision path.
    assert_eq!(server.panics_total(), 0);
    server.shutdown();
}

#[test]
fn a_panicked_worker_answers_the_next_request_on_the_same_connection() {
    // The smallest possible supervision story, on one sequential
    // connection in direct mode: request 1 succeeds, request 2 hits the
    // injected panic and gets a typed `internal` error with its id
    // echoed, request 3 — same connection, same bytes as request 1 —
    // succeeds again off the respawned engine.
    let config = ServeConfig {
        workers: 1,
        faults: FaultPlan {
            panic_every: 2,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let net = NetGenerator::suite(RandomNetConfig::default(), 9, 1)
        .unwrap()
        .remove(0);
    let solve = format!(
        r#"{{"id":5,"cmd":"solve","net":{},"target_mult":1.4}}"#,
        net_to_json(&net)
    );
    let mut client = Client::connect(server.addr()).unwrap();

    let first = client.request_line(&solve).unwrap();
    assert_eq!(
        parse_json(&first).unwrap().get("ok"),
        Some(&Json::Bool(true)),
        "{first}"
    );

    let second_line = client.request_line(&solve).unwrap();
    let second = parse_json(&second_line).unwrap();
    assert_eq!(second.get("ok"), Some(&Json::Bool(false)), "{second_line}");
    assert_eq!(
        second.get("code"),
        Some(&Json::from("internal")),
        "{second_line}"
    );
    assert_eq!(
        second.get("id"),
        Some(&Json::Num(5.0)),
        "the internal error must echo the request id: {second_line}"
    );
    let error = second.get("error").and_then(Json::as_str).unwrap();
    assert!(
        error.contains("respawned"),
        "the error must say the worker recovered: {second_line}"
    );

    let third = client.request_line(&solve).unwrap();
    assert_eq!(
        first, third,
        "the respawned engine must answer byte-identically on the same connection"
    );
    assert_eq!(server.panics_total(), 1);
    assert_eq!(server.respawns_total(), 1);
    server.shutdown();
}

#[test]
fn metrics_histograms_survive_injected_panics_and_respawns() {
    // Observability under chaos: stage timings and queue-wait histograms
    // live in an `Arc`-shared registry that respawned workers adopt, so
    // counts observed before a panic must still be visible afterwards —
    // and must only ever grow across respawns.
    let config = ServeConfig {
        workers: 2,
        shards: 2,
        faults: FaultPlan {
            panic_every: 3,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 12,
        nets: 6,
        retry: RetryPolicy::new(4, 1),
        ..LoadgenConfig::default()
    };

    let first = run_loadgen(server.addr(), None, &loadgen).unwrap();
    assert_eq!(first.errors, 0, "retries must absorb every injected panic");
    assert!(
        server.respawns_total() > 0,
        "the fault plan must force at least one respawn"
    );

    let mut client = Client::connect(server.addr()).unwrap();
    let histogram_count = |client: &mut Client, name: &str| -> f64 {
        let metrics =
            parse_json(&client.request_line(r#"{"id":7,"cmd":"metrics"}"#).unwrap()).unwrap();
        assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
        metrics
            .get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let shard_waits = |client: &mut Client| -> f64 {
        (0..2)
            .map(|s| histogram_count(client, &format!("serve_shard{s}_queue_wait_ns")))
            .sum()
    };

    // Every dispatched attempt — including the ones that panicked after
    // being popped — observed its shard queue wait, and those
    // observations survived the respawns that followed.
    let waits_after_first = shard_waits(&mut client);
    assert!(
        waits_after_first >= first.requests as f64,
        "queue-wait observations must survive respawn: saw {waits_after_first}, \
         served {} requests",
        first.requests
    );
    let stages_after_first = histogram_count(&mut client, "engine_chain_coarse_dp_ns");
    assert!(
        stages_after_first > 0.0,
        "engine stage timings must survive respawn"
    );

    // A second faulted round must only add to the histograms: if a
    // respawn swapped in a fresh registry, the counts would shrink.
    let respawns_after_first = server.respawns_total();
    let second = run_loadgen(server.addr(), None, &loadgen).unwrap();
    assert_eq!(second.errors, 0);
    assert!(
        server.respawns_total() > respawns_after_first,
        "the second round must force more respawns"
    );
    let waits_after_second = shard_waits(&mut client);
    assert!(
        waits_after_second >= waits_after_first + second.requests as f64,
        "histograms must grow monotonically across respawns: \
         {waits_after_first} then {waits_after_second}"
    );
    assert!(histogram_count(&mut client, "engine_chain_coarse_dp_ns") >= stages_after_first);
    server.shutdown();
}
