//! Service-level determinism: a running `rip_serve` server under
//! concurrent clients must answer byte-identically to sequential
//! in-process [`Engine`] solves, shut down cleanly on request, and keep
//! answering identically when its LRU caches are squeezed hard enough
//! to evict constantly.
//!
//! This is the serving analogue of `tests/engine_batch.rs`: the caches
//! and the transport may reorder *work*, never *answers*.

use rip_core::Engine;
use rip_net::{NetGenerator, RandomNetConfig};
use rip_serve::{
    net_to_json, parse_json, run_loadgen, start_server, tree_pool, tree_to_json, Client, Json,
    LoadgenConfig, ServeConfig, ServeState,
};
use rip_tech::Technology;

fn engine() -> Engine {
    Engine::paper(Technology::generic_180nm())
}

#[test]
fn concurrent_clients_get_byte_identical_answers_and_a_clean_shutdown() {
    let config = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    // The reference: an identically-configured engine driven in-process
    // and sequentially. Every deterministic response from the server
    // must match its rendering byte for byte.
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 4,
        requests_per_conn: 12,
        nets: 5,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(addr, Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.requests, 48);
    assert!(outcome.verified > 30, "most requests are deterministic");
    assert_eq!(
        outcome.mismatches, 0,
        "responses diverged from in-process engine"
    );
    assert_eq!(outcome.errors, 0, "some responses were not ok");

    // The shared engine amortized across connections: the repeated
    // scripts must be served mostly from cache, with LRU promotions
    // recorded.
    let stats = server.state().engine().stats();
    assert!(
        stats.hits() > stats.misses(),
        "warm repeated scripts must hit more than miss ({stats:?})"
    );
    assert!(stats.promotions > 0, "cache hits must promote ({stats:?})");

    // One explicit spot check straight through a raw client, no loadgen.
    let net = NetGenerator::suite(RandomNetConfig::default(), 5, 1)
        .unwrap()
        .remove(0);
    let expected = {
        let reference_engine = engine();
        let tau = reference_engine.tau_min(&net);
        reference_engine.solve(&net, 1.4 * tau).unwrap()
    };
    let mut client = Client::connect(addr).unwrap();
    let request = Json::obj([
        ("cmd", Json::from("solve")),
        ("net", net_to_json(&net)),
        ("target_mult", Json::Num(1.4)),
    ]);
    let response = client.request_value(&request).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        response
            .get("delay_fs")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        expected.solution.delay_fs.to_bits(),
        "served delay must be bit-identical to the in-process solve"
    );
    assert_eq!(
        response
            .get("total_width")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        expected.solution.total_width.to_bits()
    );

    // Clean shutdown: the server acknowledges, all workers join.
    let goodbye = client
        .request_line(r#"{"id":99,"cmd":"shutdown"}"#)
        .unwrap();
    let goodbye = parse_json(&goodbye).unwrap();
    assert_eq!(goodbye.get("stopping"), Some(&Json::Bool(true)));
    server.join();
}

#[test]
fn masked_tree_solves_round_trip_and_answer_identically_warm_vs_cold() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    // A loadgen mix with masked solve_tree requests (both the
    // blocked-flag and the explicit-`allowed` spellings): every
    // deterministic response must match the in-process reference byte
    // for byte, exactly like the chain commands.
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 16,
        nets: 4,
        trees: 3,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(addr, Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.errors, 0, "some responses were not ok");
    assert_eq!(
        outcome.mismatches, 0,
        "masked tree responses diverged from the in-process engine"
    );

    // Warm vs cold: repeating one masked solve_tree verbatim must
    // return byte-identical lines, and the `allowed`-override spelling
    // of the same mask must answer byte-identically too (modulo the
    // echoed id, which we hold fixed).
    let pool = tree_pool(&loadgen);
    let tree = pool
        .iter()
        .find(|t| t.allowed_mask().iter().any(|ok| !ok))
        .expect("the compact pool must provide a genuinely masked tree");
    let mut client = Client::connect(addr).unwrap();
    let blocked_spelling = format!(
        r#"{{"id":7,"cmd":"solve_tree","tree":{},"target_mult":1.4}}"#,
        tree_to_json(tree)
    );
    let cold = client.request_line(&blocked_spelling).unwrap();
    assert_eq!(
        parse_json(&cold).unwrap().get("ok"),
        Some(&Json::Bool(true)),
        "{cold}"
    );
    let warm = client.request_line(&blocked_spelling).unwrap();
    assert_eq!(cold, warm, "a warm masked solve must not change bytes");
    let allowed: Vec<String> = tree
        .allowed_mask()
        .iter()
        .map(|ok| ok.to_string())
        .collect();
    let override_spelling = format!(
        r#"{{"id":7,"cmd":"solve_tree","tree":{},"target_mult":1.4,"allowed":[{}]}}"#,
        tree_to_json(tree),
        allowed.join(",")
    );
    let via_override = client.request_line(&override_spelling).unwrap();
    assert_eq!(
        cold, via_override,
        "the explicit allowed override must be the same request"
    );
    server.shutdown();
}

#[test]
fn reset_stats_rezeroes_server_counters_mid_session() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let net = NetGenerator::suite(RandomNetConfig::default(), 3, 1)
        .unwrap()
        .remove(0);
    let solve = format!(
        r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
        net_to_json(&net)
    );
    let cold = client.request_line(&solve).unwrap();
    let reset = parse_json(
        &client
            .request_line(r#"{"id":2,"cmd":"reset_stats"}"#)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(reset.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(reset.get("reset"), Some(&Json::Bool(true)));
    assert!(reset.get("requests").unwrap().as_f64().unwrap() >= 2.0);
    // Counters restart; cached answers survive byte-identically.
    let stats = parse_json(&client.request_line(r#"{"id":3,"cmd":"stats"}"#).unwrap()).unwrap();
    assert_eq!(stats.get("requests").unwrap().as_f64(), Some(1.0));
    assert_eq!(stats.get("nets_solved").unwrap().as_f64(), Some(0.0));
    let warm = client.request_line(&solve).unwrap();
    assert_eq!(cold, warm, "reset_stats must not drop cache contents");
    server.shutdown();
}

#[test]
fn tight_lru_caps_change_hit_rates_but_never_answers() {
    // Caps small enough that the 6-net script evicts constantly.
    let config = ServeConfig {
        workers: 2,
        cache_cap: 2,
        value_cache_cap: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 10,
        nets: 6,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(server.addr(), Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.mismatches, 0, "eviction must never change answers");
    assert_eq!(outcome.errors, 0);
    let stats = server.state().engine().stats();
    assert!(
        stats.evictions > 0,
        "the tight caps must actually evict ({stats:?})"
    );
    assert_eq!(server.state().engine().cache_cap(), 2);
    server.shutdown();
}

#[test]
fn host_initiated_shutdown_drains_idle_workers() {
    let config = ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();
    // A connected but idle client must not block the drain.
    let _idle = Client::connect(addr).unwrap();
    server.shutdown();
}
