//! Service-level determinism: a running `rip_serve` server under
//! concurrent clients must answer byte-identically to sequential
//! in-process [`Engine`] solves, shut down cleanly on request, and keep
//! answering identically when its LRU caches are squeezed hard enough
//! to evict constantly.
//!
//! This is the serving analogue of `tests/engine_batch.rs`: the caches
//! and the transport may reorder *work*, never *answers*.

use rip_core::Engine;
use rip_net::{NetGenerator, RandomNetConfig};
use rip_serve::{
    net_to_json, parse_json, run_loadgen, start_server, tree_pool, tree_to_json, Client, Json,
    LoadgenConfig, ServeConfig, ServeState,
};
use rip_tech::Technology;

fn engine() -> Engine {
    Engine::paper(Technology::generic_180nm())
}

#[test]
fn concurrent_clients_get_byte_identical_answers_and_a_clean_shutdown() {
    let config = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    // The reference: an identically-configured engine driven in-process
    // and sequentially. Every deterministic response from the server
    // must match its rendering byte for byte.
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 4,
        requests_per_conn: 12,
        nets: 5,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(addr, Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.requests, 48);
    assert!(outcome.verified > 30, "most requests are deterministic");
    assert_eq!(
        outcome.mismatches, 0,
        "responses diverged from in-process engine"
    );
    assert_eq!(outcome.errors, 0, "some responses were not ok");

    // The shared engine amortized across connections: the repeated
    // scripts must be served mostly from cache, with LRU promotions
    // recorded.
    let stats = server.state().engine().stats();
    assert!(
        stats.hits() > stats.misses(),
        "warm repeated scripts must hit more than miss ({stats:?})"
    );
    assert!(stats.promotions > 0, "cache hits must promote ({stats:?})");

    // One explicit spot check straight through a raw client, no loadgen.
    let net = NetGenerator::suite(RandomNetConfig::default(), 5, 1)
        .unwrap()
        .remove(0);
    let expected = {
        let reference_engine = engine();
        let tau = reference_engine.tau_min(&net);
        reference_engine.solve(&net, 1.4 * tau).unwrap()
    };
    let mut client = Client::connect(addr).unwrap();
    let request = Json::obj([
        ("cmd", Json::from("solve")),
        ("net", net_to_json(&net)),
        ("target_mult", Json::Num(1.4)),
    ]);
    let response = client.request_value(&request).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        response
            .get("delay_fs")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        expected.solution.delay_fs.to_bits(),
        "served delay must be bit-identical to the in-process solve"
    );
    assert_eq!(
        response
            .get("total_width")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits(),
        expected.solution.total_width.to_bits()
    );

    // Clean shutdown: the server acknowledges, all workers join.
    let goodbye = client
        .request_line(r#"{"id":99,"cmd":"shutdown"}"#)
        .unwrap();
    let goodbye = parse_json(&goodbye).unwrap();
    assert_eq!(goodbye.get("stopping"), Some(&Json::Bool(true)));
    server.join();
}

#[test]
fn masked_tree_solves_round_trip_and_answer_identically_warm_vs_cold() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    // A loadgen mix with masked solve_tree requests (both the
    // blocked-flag and the explicit-`allowed` spellings): every
    // deterministic response must match the in-process reference byte
    // for byte, exactly like the chain commands.
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 16,
        nets: 4,
        trees: 3,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(addr, Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.errors, 0, "some responses were not ok");
    assert_eq!(
        outcome.mismatches, 0,
        "masked tree responses diverged from the in-process engine"
    );

    // Warm vs cold: repeating one masked solve_tree verbatim must
    // return byte-identical lines, and the `allowed`-override spelling
    // of the same mask must answer byte-identically too (modulo the
    // echoed id, which we hold fixed).
    let pool = tree_pool(&loadgen);
    let tree = pool
        .iter()
        .find(|t| t.allowed_mask().iter().any(|ok| !ok))
        .expect("the compact pool must provide a genuinely masked tree");
    let mut client = Client::connect(addr).unwrap();
    let blocked_spelling = format!(
        r#"{{"id":7,"cmd":"solve_tree","tree":{},"target_mult":1.4}}"#,
        tree_to_json(tree)
    );
    let cold = client.request_line(&blocked_spelling).unwrap();
    assert_eq!(
        parse_json(&cold).unwrap().get("ok"),
        Some(&Json::Bool(true)),
        "{cold}"
    );
    let warm = client.request_line(&blocked_spelling).unwrap();
    assert_eq!(cold, warm, "a warm masked solve must not change bytes");
    let allowed: Vec<String> = tree
        .allowed_mask()
        .iter()
        .map(|ok| ok.to_string())
        .collect();
    let override_spelling = format!(
        r#"{{"id":7,"cmd":"solve_tree","tree":{},"target_mult":1.4,"allowed":[{}]}}"#,
        tree_to_json(tree),
        allowed.join(",")
    );
    let via_override = client.request_line(&override_spelling).unwrap();
    assert_eq!(
        cold, via_override,
        "the explicit allowed override must be the same request"
    );
    server.shutdown();
}

#[test]
fn reset_stats_rezeroes_server_counters_mid_session() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let net = NetGenerator::suite(RandomNetConfig::default(), 3, 1)
        .unwrap()
        .remove(0);
    let solve = format!(
        r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
        net_to_json(&net)
    );
    let cold = client.request_line(&solve).unwrap();
    let reset = parse_json(
        &client
            .request_line(r#"{"id":2,"cmd":"reset_stats"}"#)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(reset.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(reset.get("reset"), Some(&Json::Bool(true)));
    assert!(reset.get("requests").unwrap().as_f64().unwrap() >= 2.0);
    // Counters restart; cached answers survive byte-identically.
    let stats = parse_json(&client.request_line(r#"{"id":3,"cmd":"stats"}"#).unwrap()).unwrap();
    assert_eq!(stats.get("requests").unwrap().as_f64(), Some(1.0));
    assert_eq!(stats.get("nets_solved").unwrap().as_f64(), Some(0.0));
    let warm = client.request_line(&solve).unwrap();
    assert_eq!(cold, warm, "reset_stats must not drop cache contents");
    server.shutdown();
}

#[test]
fn tight_lru_caps_change_hit_rates_but_never_answers() {
    // Caps small enough that the 6-net script evicts constantly.
    let config = ServeConfig {
        workers: 2,
        cache_cap: 2,
        value_cache_cap: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 2,
        requests_per_conn: 10,
        nets: 6,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(server.addr(), Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.mismatches, 0, "eviction must never change answers");
    assert_eq!(outcome.errors, 0);
    let stats = server.state().engine().stats();
    assert!(
        stats.evictions > 0,
        "the tight caps must actually evict ({stats:?})"
    );
    assert_eq!(server.state().engine().cache_cap(), 2);
    server.shutdown();
}

#[test]
fn sharded_server_answers_byte_identically_to_a_single_engine() {
    // The sharding-equivalence claim end to end: a sharded server under
    // a mixed net + masked-tree load answers byte-identically to the
    // sequential in-process reference — which is exactly what the
    // direct server is held to, so the two topologies are
    // interchangeable on the wire.
    let config = ServeConfig {
        workers: 4,
        shards: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    assert_eq!(server.shards(), 2);
    let reference = ServeState::new(engine());
    let loadgen = LoadgenConfig {
        connections: 4,
        requests_per_conn: 12,
        nets: 5,
        trees: 3,
        ..LoadgenConfig::default()
    };
    let outcome = run_loadgen(server.addr(), Some(&reference), &loadgen).unwrap();
    assert_eq!(outcome.errors, 0, "some sharded responses were not ok");
    assert_eq!(
        outcome.mismatches, 0,
        "sharded responses diverged from the single in-process engine"
    );
    // The cache-key router actually spread the pool across both shards,
    // and the per-shard accounting saw the traffic.
    let snapshots = server.shard_snapshots();
    assert_eq!(snapshots.len(), 2);
    assert!(
        snapshots.iter().all(|s| s.requests > 0),
        "both shards must take traffic ({snapshots:?})"
    );
    server.shutdown();
}

/// Pulls one histogram's count out of a rendered `metrics` response.
fn histogram_count(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("metrics response lacks histogram {name}: {metrics:?}"))
        as u64
}

#[test]
fn metrics_histogram_counts_exactly_match_request_counters_in_both_modes() {
    // The tentpole's exactness claim: the edge observes its queue-wait
    // and solve histograms once per request line, `metrics` counts
    // itself before snapshotting, and `reset_stats` is skipped (its
    // counter increment is zeroed during handling) — so the histogram
    // counts always equal the `stats` request counter, in every reset
    // epoch, in both topologies.
    for shards in [0usize, 2] {
        let config = ServeConfig {
            workers: 2,
            shards,
            ..ServeConfig::default()
        };
        let server = start_server(engine(), &config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 21, 3).unwrap();
        for (i, net) in nets.iter().enumerate() {
            let line = format!(
                r#"{{"id":{i},"cmd":"solve","net":{},"target_mult":1.4}}"#,
                net_to_json(net)
            );
            let response = parse_json(&client.request_line(&line).unwrap()).unwrap();
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        }

        // 3 solves + this metrics line itself = 4 observed lines.
        let metrics =
            parse_json(&client.request_line(r#"{"id":10,"cmd":"metrics"}"#).unwrap()).unwrap();
        assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
        let queue_count = histogram_count(&metrics, "serve_request_queue_wait_ns");
        let solve_count = histogram_count(&metrics, "serve_request_solve_ns");
        assert_eq!(queue_count, 4, "shards={shards}");
        assert_eq!(solve_count, 4, "shards={shards}");
        // The engine-side stage histograms rode along in the merge.
        assert!(
            histogram_count(&metrics, "engine_chain_coarse_dp_ns") >= 3,
            "shards={shards}: {metrics:?}"
        );
        if shards > 0 {
            // Every dispatched (non-control) request crossed exactly one
            // shard queue; the per-shard histograms must account for all
            // 3 solves and nothing else.
            let per_shard: u64 = (0..shards)
                .map(|s| {
                    metrics
                        .get("histograms")
                        .and_then(|h| h.get(&format!("serve_shard{s}_queue_wait_ns")))
                        .and_then(|h| h.get("count"))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0) as u64
                })
                .sum();
            assert_eq!(
                per_shard, 3,
                "shard queue-wait counts must sum to the solves"
            );
        }

        // The stats line right after sees the metrics line + itself.
        let stats =
            parse_json(&client.request_line(r#"{"id":11,"cmd":"stats"}"#).unwrap()).unwrap();
        assert_eq!(
            stats.get("requests").unwrap().as_f64(),
            Some((queue_count + 1) as f64),
            "stats must lead the last metrics snapshot by exactly its own line"
        );

        // Across a reset epoch the equality holds from zero again.
        let reset = parse_json(
            &client
                .request_line(r#"{"id":12,"cmd":"reset_stats"}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(reset.get("ok"), Some(&Json::Bool(true)));
        let metrics =
            parse_json(&client.request_line(r#"{"id":13,"cmd":"metrics"}"#).unwrap()).unwrap();
        assert_eq!(
            histogram_count(&metrics, "serve_request_queue_wait_ns"),
            1,
            "shards={shards}: post-reset counts restart at this metrics line"
        );
        assert_eq!(histogram_count(&metrics, "serve_request_solve_ns"), 1);
        let stats =
            parse_json(&client.request_line(r#"{"id":14,"cmd":"stats"}"#).unwrap()).unwrap();
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(2.0));
        server.shutdown();
    }
}

#[test]
fn metrics_interleaving_never_changes_solver_bytes() {
    // Determinism rider: snapshotting and resetting the observability
    // layer must never change an answer byte. Cold solve, metrics,
    // reset_stats, warm solve — cold and warm must match exactly.
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let net = NetGenerator::suite(RandomNetConfig::default(), 31, 1)
        .unwrap()
        .remove(0);
    let solve = format!(
        r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
        net_to_json(&net)
    );
    let cold = client.request_line(&solve).unwrap();
    let metrics = parse_json(&client.request_line(r#"{"id":2,"cmd":"metrics"}"#).unwrap()).unwrap();
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    client
        .request_line(r#"{"id":3,"cmd":"reset_stats"}"#)
        .unwrap();
    let warm = client.request_line(&solve).unwrap();
    assert_eq!(
        cold, warm,
        "metrics/reset interleaving must not perturb solver output"
    );

    // Engine-level spelling of the same claim: an engine whose registry
    // was swapped for a foreign, pre-populated one still solves
    // bit-identically to a fresh engine.
    let fresh = engine();
    let expected = {
        let tau = fresh.tau_min(&net);
        fresh.solve(&net, 1.4 * tau).unwrap()
    };
    let mut adopted = engine();
    let foreign = std::sync::Arc::new(rip_obs::MetricsRegistry::new());
    foreign.histogram("engine_chain_coarse_dp_ns").observe(999);
    adopted.adopt_metrics(foreign);
    let tau = adopted.tau_min(&net);
    let got = adopted.solve(&net, 1.4 * tau).unwrap();
    assert_eq!(
        got.solution.delay_fs.to_bits(),
        expected.solution.delay_fs.to_bits()
    );
    assert_eq!(
        got.solution.total_width.to_bits(),
        expected.solution.total_width.to_bits()
    );
    server.shutdown();
}

#[test]
fn over_limit_connections_get_a_typed_busy_rejection() {
    let config = ServeConfig {
        // More workers than allowed connections: the spare workers are
        // what deliver the rejection line (documented in rip_serve).
        workers: 3,
        max_conns: 1,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();
    let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
        .unwrap()
        .remove(0);
    let solve = format!(
        r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
        net_to_json(&net)
    );

    // A full round trip pins the first connection to a worker before
    // anything else dials in.
    let mut occupant = Client::connect(addr).unwrap();
    let accepted = parse_json(&occupant.request_line(&solve).unwrap()).unwrap();
    assert_eq!(accepted.get("ok"), Some(&Json::Bool(true)));

    // The second connection is over the limit: it gets one typed busy
    // line without sending anything, then the socket closes.
    let mut rejected = Client::connect(addr).unwrap();
    let line = rejected.read_line().unwrap();
    let busy = parse_json(&line).unwrap();
    assert_eq!(busy.get("ok"), Some(&Json::Bool(false)), "{line}");
    assert_eq!(busy.get("code"), Some(&Json::from("busy")), "{line}");
    assert_eq!(busy.get("id"), Some(&Json::Null), "{line}");
    let error = busy.get("error").and_then(Json::as_str).unwrap();
    assert!(
        error.contains("connection limit (1)"),
        "the busy line must name the limit: {line}"
    );
    assert!(
        rejected.read_line().is_err(),
        "the rejected socket must close after the busy line"
    );
    assert_eq!(server.rejected_conns(), 1);

    // The occupant is unaffected — and once it hangs up, its slot frees
    // for a new connection.
    let warm = parse_json(&occupant.request_line(&solve).unwrap()).unwrap();
    assert_eq!(warm.get("ok"), Some(&Json::Bool(true)));
    drop(occupant);
    let mut successor = Client::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        // The freed slot is visible only after the server notices the
        // hangup; retry the dial until it lands or the deadline passes.
        match parse_json(&successor.request_line(&solve).unwrap()).unwrap() {
            ref ok if ok.get("ok") == Some(&Json::Bool(true)) => break,
            rejected_again => {
                assert_eq!(
                    rejected_again.get("code"),
                    Some(&Json::from("busy")),
                    "only busy rejections are acceptable while the slot drains"
                );
                assert!(
                    std::time::Instant::now() < deadline,
                    "the connection slot never freed after the occupant hung up"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
                successor = Client::connect(addr).unwrap();
            }
        }
    }
    server.shutdown();
}

#[test]
fn full_shard_queues_surface_typed_backpressure_errors() {
    // One shard with a one-slot queue behind many connection workers:
    // concurrent expensive requests must overflow the queue, and the
    // overflow must surface as a typed `backpressure` error — never a
    // hang, a dropped connection, or a wrong answer.
    let config = ServeConfig {
        workers: 6,
        shards: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    let mut backpressured = 0u64;
    for round in 0..10u64 {
        let lines: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6u64)
                .map(|k| {
                    let seed = 100 + round * 10 + k;
                    scope.spawn(move || {
                        // Fresh nets every round so nothing is cached
                        // and every batch really occupies the shard.
                        let nets = NetGenerator::suite(RandomNetConfig::default(), seed, 3)
                            .unwrap()
                            .iter()
                            .map(|n| net_to_json(n).to_string())
                            .collect::<Vec<_>>()
                            .join(",");
                        let request = format!(
                            r#"{{"id":{seed},"cmd":"batch","nets":[{nets}],"target_mult":1.4}}"#
                        );
                        let mut client = Client::connect(addr).unwrap();
                        client.request_line(&request).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for line in lines {
            let response = parse_json(&line).unwrap();
            if response.get("ok") == Some(&Json::Bool(true)) {
                continue;
            }
            assert_eq!(
                response.get("code"),
                Some(&Json::from("backpressure")),
                "the only acceptable failure under overload is backpressure: {line}"
            );
            let error = response.get("error").and_then(Json::as_str).unwrap();
            assert!(
                error.contains("queue is full"),
                "the backpressure line must say what overflowed: {line}"
            );
            assert!(
                error.contains("cap 1"),
                "the backpressure line must name the queue cap: {line}"
            );
            backpressured += 1;
        }
        if backpressured > 0 {
            break;
        }
    }
    assert!(
        backpressured > 0,
        "6 concurrent cold batches against a 1-slot queue never overflowed"
    );
    // The per-shard accounting saw the overflow too.
    let snapshots = server.shard_snapshots();
    assert_eq!(snapshots.len(), 1);
    assert!(snapshots[0].errors >= backpressured);
    assert!(snapshots[0].queue_high_water >= 1);
    server.shutdown();
}

#[test]
fn host_initiated_shutdown_drains_idle_workers() {
    let config = ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();
    // A connected but idle client must not block the drain.
    let _idle = Client::connect(addr).unwrap();
    server.shutdown();
}

#[test]
fn over_long_request_lines_get_a_typed_bad_request_before_close() {
    // A line past the cap must surface as a typed `bad_request` the
    // client can actually read — not a silent close (whose unread input
    // would turn into a TCP reset destroying the error line in flight).
    let config = ServeConfig {
        workers: 2,
        max_line_bytes: 256,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_line(&"a".repeat(8192)).unwrap();
    let line = client.read_line().unwrap();
    let response = parse_json(&line).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{line}");
    assert_eq!(
        response.get("code"),
        Some(&Json::from("bad_request")),
        "{line}"
    );
    let error = response.get("error").and_then(Json::as_str).unwrap();
    assert!(
        error.contains("exceeds 256 bytes"),
        "the error must name the cap: {line}"
    );
    assert!(
        client.read_line().is_err(),
        "the connection must close after the typed error"
    );
    server.shutdown();
}

#[test]
fn drain_finishes_in_flight_work_and_rejects_new_requests() {
    let config = ServeConfig {
        workers: 4,
        drain_deadline_secs: 30,
        ..ServeConfig::default()
    };
    let server = start_server(engine(), &config).unwrap();
    let addr = server.addr();

    // An expensive in-flight batch on its own connection: drain must
    // let it finish, not cut it off.
    let in_flight = std::thread::spawn(move || {
        let nets = NetGenerator::suite(RandomNetConfig::default(), 77, 4)
            .unwrap()
            .iter()
            .map(|n| net_to_json(n).to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut client = Client::connect(addr).unwrap();
        client
            .request_line(&format!(
                r#"{{"id":1,"cmd":"batch","nets":[{nets}],"target_mult":1.4}}"#
            ))
            .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(150));

    // A control connection pipelines `drain` plus one more request in a
    // single write: the drain is acknowledged, and everything behind it
    // on the same connection is already too late.
    let mut ctl = Client::connect(addr).unwrap();
    ctl.send_line(concat!(
        r#"{"id":10,"cmd":"drain","deadline_ms":30000}"#,
        "\n",
        r#"{"id":11,"cmd":"tau_min","net":{"segments":[[3000,0.08,0.2]]}}"#
    ))
    .unwrap();
    let ack = parse_json(&ctl.read_line().unwrap()).unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)));
    assert!(ack.get("deadline_ms").unwrap().as_f64().unwrap() >= 30000.0);
    let late_line = ctl.read_line().unwrap();
    let late = parse_json(&late_line).unwrap();
    assert_eq!(
        late.get("code"),
        Some(&Json::from("shutting_down")),
        "work behind the drain must be rejected, typed: {late_line}"
    );
    drop(ctl);

    // A late dial gets one typed `shutting_down` line, then close.
    let mut late_dial = Client::connect(addr).unwrap();
    let reject_line = late_dial.read_line().unwrap();
    let reject = parse_json(&reject_line).unwrap();
    assert_eq!(reject.get("ok"), Some(&Json::Bool(false)), "{reject_line}");
    assert_eq!(
        reject.get("code"),
        Some(&Json::from("shutting_down")),
        "{reject_line}"
    );
    drop(late_dial);

    // The in-flight batch still completed, ok and in full.
    let response = parse_json(&in_flight.join().unwrap()).unwrap();
    assert_eq!(
        response.get("ok"),
        Some(&Json::Bool(true)),
        "drain must not cut in-flight work"
    );

    // With every connection gone, the drain concludes well before its
    // deadline and the server joins cleanly.
    let t0 = std::time::Instant::now();
    server.join();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(20),
        "drain took {:?} — it must conclude once idle, not sit on the deadline",
        t0.elapsed()
    );
}
