//! The SoA tree DP must be *byte-identical* to the frozen pre-SoA
//! engine (`rip_dp::reference::tree`) — same buffer assignments, same
//! float bits, same work counters — across a 50-tree determinism
//! corpus.
//!
//! The `Debug` rendering pins every float bit: if any pruning decision,
//! tie-break, or counter diverges, these tests name the tree and target
//! that exposed it. Trees are generated from the paper-distribution
//! tree suite, subdivided into candidate buffer sites, and solved both
//! unmasked and under each net's forbidden-node mask (on the raw
//! topology, where the mask indices align).

use rip_delay::RcTree;
use rip_dp::{reference, tree_min_delay, tree_min_power, DpError};
use rip_net::{RandomTreeConfig, TreeNet, TreeNetGenerator};
use rip_tech::{RepeaterLibrary, Technology};

fn corpus() -> Vec<TreeNet> {
    TreeNetGenerator::suite(RandomTreeConfig::default(), 2005, 50).unwrap()
}

#[test]
fn min_delay_is_byte_identical_to_reference_on_50_tree_corpus() {
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().enumerate() {
        let (sites, _) = RcTree::from_tree_net(net, tech.device()).subdivided(200.0);
        let new = tree_min_delay(&sites, tech.device(), net.driver_width(), &lib, None).unwrap();
        let old =
            reference::tree::tree_min_delay(&sites, tech.device(), net.driver_width(), &lib, None)
                .unwrap();
        assert_eq!(
            format!("{new:?}"),
            format!("{old:?}"),
            "tree {i}: min-delay solution diverged from the reference engine"
        );
    }
}

#[test]
fn min_power_is_byte_identical_to_reference_on_50_tree_corpus() {
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().enumerate() {
        let (sites, _) = RcTree::from_tree_net(net, tech.device()).subdivided(200.0);
        let tau_min =
            reference::tree::tree_min_delay(&sites, tech.device(), net.driver_width(), &lib, None)
                .unwrap()
                .delay_fs;
        for mult in [1.25, 1.6] {
            let target = tau_min * mult;
            let new = tree_min_power(
                &sites,
                tech.device(),
                net.driver_width(),
                &lib,
                None,
                target,
            )
            .unwrap();
            let old = reference::tree::tree_min_power(
                &sites,
                tech.device(),
                net.driver_width(),
                &lib,
                None,
                target,
            )
            .unwrap();
            assert_eq!(
                format!("{new:?}"),
                format!("{old:?}"),
                "tree {i} mult {mult}: min-power solution diverged from the reference engine"
            );
        }
    }
}

#[test]
fn masked_solves_stay_byte_identical() {
    // The forbidden-node masks exercise the buffer_ok gate on the raw
    // topologies, where the generator's mask aligns index-for-index.
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().take(15).enumerate() {
        let tree = RcTree::from_tree_net(net, tech.device());
        let mask = net.allowed_mask();
        let new =
            tree_min_delay(&tree, tech.device(), net.driver_width(), &lib, Some(&mask)).unwrap();
        let old = reference::tree::tree_min_delay(
            &tree,
            tech.device(),
            net.driver_width(),
            &lib,
            Some(&mask),
        )
        .unwrap();
        assert_eq!(
            format!("{new:?}"),
            format!("{old:?}"),
            "tree {i}: masked min-delay diverged from the reference engine"
        );
        for (v, ok) in mask.iter().enumerate() {
            assert!(
                *ok || new.buffer_widths[v].is_none(),
                "tree {i}: buffer placed on forbidden node {v}"
            );
        }
    }
}

#[test]
fn infeasible_targets_report_identical_achievable_delays() {
    let tech = Technology::generic_180nm();
    let lib = RepeaterLibrary::paper_coarse();
    for (i, net) in corpus().iter().take(10).enumerate() {
        let (sites, _) = RcTree::from_tree_net(net, tech.device()).subdivided(200.0);
        let tau_min =
            reference::tree::tree_min_delay(&sites, tech.device(), net.driver_width(), &lib, None)
                .unwrap()
                .delay_fs;
        let target = tau_min * 0.5;
        let new = tree_min_power(
            &sites,
            tech.device(),
            net.driver_width(),
            &lib,
            None,
            target,
        )
        .unwrap_err();
        let old = reference::tree::tree_min_power(
            &sites,
            tech.device(),
            net.driver_width(),
            &lib,
            None,
            target,
        )
        .unwrap_err();
        match (&new, &old) {
            (
                DpError::InfeasibleTarget {
                    achievable_fs: a, ..
                },
                DpError::InfeasibleTarget {
                    achievable_fs: b, ..
                },
            ) => {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "tree {i}: achievable delay diverged"
                );
            }
            other => panic!("tree {i}: unexpected error pair {other:?}"),
        }
    }
}
