//! Blocked tree nodes are binding **end to end**: across a seeded
//! masked-tree corpus, no stage of the hybrid pipeline may ever place a
//! buffer on a blocked node (original nodes via their projection onto
//! the fine subdivision — `RcTree::project_allowed` is the one
//! definition of that projection), masked solves must be byte-
//! deterministic across batch vs sequential runs, and on tiny trees the
//! masked engine must agree with exhaustive enumeration restricted to
//! the legal nodes (optimal power at equal delay).
//!
//! The corpus reuses `RandomTreeConfig`'s forbidden runs: the compact
//! distribution keeps every pipeline solve fast while guaranteeing real
//! masks on most topologies, and the `TreeRipConfig` used here coarsens
//! the subdivision steps so the suite stays cheap in debug CI runs —
//! mask semantics do not depend on the step sizes.

use rip_core::{BatchTarget, Engine, RipConfig, RipError, TreeRipConfig};
use rip_delay::RcTree;
use rip_dp::{brute_tree_min_power, tree_min_power};
use rip_net::{RandomTreeConfig, TreeNet, TreeNetGenerator};
use rip_tech::{RepeaterLibrary, Technology};

/// Seeded corpus: compact masked trees (the generator's contiguous
/// forbidden runs), keeping only topologies whose mask actually blocks
/// something — an all-true mask is covered by the equivalence suites.
fn masked_corpus() -> Vec<TreeNet> {
    TreeNetGenerator::suite(RandomTreeConfig::compact(), 4242, 16)
        .unwrap()
        .into_iter()
        .filter(|net| net.allowed_mask().iter().any(|ok| !ok))
        .collect()
}

/// A cheap pipeline configuration for the conformance sweeps: coarser
/// subdivision steps than the paper defaults (the masked semantics are
/// step-independent), everything else untouched.
fn cheap_config() -> TreeRipConfig {
    TreeRipConfig {
        coarse_step_um: 300.0,
        fine_step_um: 100.0,
        ..TreeRipConfig::paper()
    }
}

fn engine() -> Engine {
    Engine::new(Technology::generic_180nm(), RipConfig::paper())
}

#[test]
fn masked_pipeline_never_occupies_blocked_nodes() {
    let engine = engine();
    let config = cheap_config();
    let device = *engine.technology().device();
    let corpus = masked_corpus();
    assert!(
        corpus.len() >= 6,
        "the seed must yield a usable masked corpus"
    );
    let mut solves = 0usize;
    for (i, net) in corpus.iter().enumerate() {
        let tree = RcTree::from_tree_net(net, &device);
        let mask = net.allowed_mask();
        let (fine, map) = tree.subdivided(config.fine_step_um);
        let projected = tree.project_allowed(&fine, &map, &mask);
        let tau = engine
            .tree_tau_min_masked(&tree, net.driver_width(), &config, Some(&mask))
            .unwrap();
        for mult in [1.2, 1.5, 2.0] {
            let target = tau * mult;
            let out = match engine.solve_tree_masked(
                &tree,
                net.driver_width(),
                target,
                &config,
                Some(&mask),
            ) {
                Ok(out) => out,
                // Tight masked targets may legitimately be infeasible
                // for the hybrid (the DP τ_min is a lower bound for the
                // pipeline); a typed error is a correct answer, an
                // illegal placement never is.
                Err(RipError::Infeasible { .. }) => continue,
                Err(e) => panic!("tree {i} mult {mult}: unexpected error {e}"),
            };
            solves += 1;
            assert_eq!(out.solution.buffer_widths.len(), fine.len());
            for (v, width) in out.solution.buffer_widths.iter().enumerate() {
                assert!(
                    projected[v] || width.is_none(),
                    "tree {i} mult {mult}: buffer on blocked fine node {v}"
                );
            }
            assert!(
                out.solution.delay_fs <= target * (1.0 + 1e-9),
                "tree {i} mult {mult}: target missed"
            );
            // Independent re-evaluation on the fine tree: the reported
            // delay is real, not an artifact of the masked DP.
            let timing = out.fine_tree.evaluate_buffered(
                &device,
                net.driver_width(),
                &out.solution.buffer_widths,
            );
            assert!((timing.max_sink_delay - out.solution.delay_fs).abs() < 1e-6);
        }
    }
    assert!(
        solves >= corpus.len(),
        "most masked solves must be feasible"
    );
}

#[test]
fn masked_batch_and_sequential_solves_are_byte_identical() {
    let engine = engine();
    let config = cheap_config();
    let device = *engine.technology().device();
    let jobs: Vec<(RcTree, f64, Option<Vec<bool>>)> = masked_corpus()
        .iter()
        .take(6)
        .map(|net| {
            (
                RcTree::from_tree_net(net, &device),
                net.driver_width(),
                Some(net.allowed_mask()),
            )
        })
        .collect();
    let target = BatchTarget::TauMinMultiple(1.5);
    let a = engine.solve_tree_batch_masked(&jobs, &target, &config);
    let b = engine.solve_tree_batch_masked(&jobs, &target, &config);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            format!("{:?}", x.as_ref().unwrap().solution),
            format!("{:?}", y.as_ref().unwrap().solution),
            "tree {i}: repeated masked batch diverged"
        );
    }
    // Entry i is exactly the one-at-a-time masked solve — batch
    // parallelism and cache warmth may reorder work, never answers.
    for (i, ((tree, driver, allowed), out)) in jobs.iter().zip(&a).enumerate() {
        let allowed = allowed.as_deref();
        let solo_target = 1.5
            * engine
                .tree_tau_min_masked(tree, *driver, &config, allowed)
                .unwrap();
        let solo = engine
            .solve_tree_masked(tree, *driver, solo_target, &config, allowed)
            .unwrap();
        assert_eq!(
            format!("{:?}", solo.solution),
            format!("{:?}", out.as_ref().unwrap().solution),
            "tree {i}: masked batch diverged from the sequential solve"
        );
    }
}

#[test]
fn masked_dp_matches_the_exhaustive_oracle_on_tiny_trees() {
    // ≤ 8-node trees, a small library: the masked tree DP must hand
    // back exactly the exhaustive optimum over the legal nodes.
    let tech = Technology::generic_180nm();
    let device = tech.device();
    let library = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
    let corpus: Vec<TreeNet> = masked_corpus().into_iter().take(5).collect();
    for (i, net) in corpus.iter().enumerate() {
        assert!(net.len() <= 8, "the compact corpus stays oracle-sized");
        let tree = RcTree::from_tree_net(net, device);
        let mask = net.allowed_mask();
        let fastest =
            rip_dp::brute_tree_min_delay(&tree, device, net.driver_width(), &library, Some(&mask))
                .unwrap();
        for mult in [1.05, 1.3, 1.8] {
            let target = fastest.delay_fs * mult;
            let brute = brute_tree_min_power(
                &tree,
                device,
                net.driver_width(),
                &library,
                Some(&mask),
                target,
            )
            .unwrap();
            let dp = tree_min_power(
                &tree,
                device,
                net.driver_width(),
                &library,
                Some(&mask),
                target,
            )
            .unwrap();
            assert!(
                (dp.total_width - brute.total_width).abs() < 1e-9,
                "tree {i} mult {mult}: dp width {} vs exhaustive {}",
                dp.total_width,
                brute.total_width
            );
            for (v, &ok) in mask.iter().enumerate() {
                assert!(ok || dp.buffer_widths[v].is_none());
                assert!(ok || brute.buffer_widths[v].is_none());
            }
        }
    }
}

#[test]
fn masked_engine_outcome_is_bounded_by_the_legal_exhaustive_optimum() {
    // With subdivision steps longer than every edge, the fine tree IS
    // the raw tree, so the engine's final stage and the exhaustive
    // oracle optimize over the same node set — the engine (whose
    // windowed sites are a subset of the legal nodes) can never beat
    // the oracle, and must never leave the legal set.
    let engine = engine();
    let config = TreeRipConfig {
        coarse_step_um: 2000.0,
        fine_step_um: 2000.0,
        ..TreeRipConfig::paper()
    };
    let device = *engine.technology().device();
    let net = masked_corpus()
        .into_iter()
        .find(|net| net.len() <= 5)
        .expect("the compact distribution yields tiny masked trees");
    let tree = RcTree::from_tree_net(&net, &device);
    let mask = net.allowed_mask();
    let tau = engine
        .tree_tau_min_masked(&tree, net.driver_width(), &config, Some(&mask))
        .unwrap();
    let target = tau * 1.4;
    let out = engine
        .solve_tree_masked(&tree, net.driver_width(), target, &config, Some(&mask))
        .unwrap();
    assert_eq!(
        out.fine_tree.len(),
        tree.len(),
        "2000 um steps must leave the compact tree unsplit"
    );
    for (v, &ok) in mask.iter().enumerate() {
        assert!(
            ok || out.solution.buffer_widths[v].is_none(),
            "buffer on blocked node {v}"
        );
    }
    let oracle = brute_tree_min_power(
        &tree,
        &device,
        net.driver_width(),
        &out.library,
        Some(&mask),
        target,
    )
    .unwrap();
    assert!(
        out.solution.total_width + 1e-9 >= oracle.total_width,
        "engine width {} beat the exhaustive legal optimum {}",
        out.solution.total_width,
        oracle.total_width
    );
}
